//! The [`Function`]: blocks, instructions, SSA values and their def-use
//! chains.

use fastlive_graph::{Cfg, NodeId};

use crate::entities::{Block, Inst, PrimaryMap, Value};
use crate::instr::InstData;
use crate::point::ProgramPoint;

/// Where an SSA value is defined.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ValueDef {
    /// The `index`-th parameter of `block` — the IR's φ-functions.
    /// Entry-block parameters are the function's parameters.
    Param {
        /// Owning block.
        block: Block,
        /// Position among the block's parameters.
        index: u32,
    },
    /// The result of an instruction.
    Inst(Inst),
}

/// Per-block storage: parameters and the instruction list.
#[derive(Clone, Debug, Default)]
struct BlockData {
    params: Vec<Value>,
    insts: Vec<Inst>,
}

/// An SSA function over a single integer type, with maintained def-use
/// chains and predecessor/successor lists.
///
/// # Shape invariants
///
/// * The first created block is the entry; its parameters are the
///   function parameters.
/// * Every block ends with exactly one terminator (`jump`, `brif`,
///   `return`); appending past a terminator panics.
/// * φ-functions are *block parameters*: a branch to `blockN(a, b)`
///   passes `a, b` to `blockN`'s parameters. Per Definition 1 of the
///   paper, those branch arguments are uses *at the predecessor block* —
///   which is automatic here, because the branch instruction lives in the
///   predecessor.
/// * Def-use chains ([`Function::uses`]) are maintained by every mutator.
///   This is the cheap-to-maintain structure the paper's queries walk
///   ("updating the def-use chain when adding or removing uses of a
///   variable incurs virtually no costs").
///
/// # Examples
///
/// ```
/// use fastlive_ir::{Function, BinaryOp};
///
/// let mut f = Function::new("add1");
/// let b0 = f.add_block();
/// let x = f.append_block_param(b0);
/// let one = f.ins(b0).iconst(1);
/// let sum = f.ins(b0).iadd(x, one);
/// f.ins(b0).ret(vec![sum]);
/// assert_eq!(f.params(), &[x]);
/// assert_eq!(f.uses(x).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbolic name (printed as `function %name`).
    pub name: String,
    blocks: PrimaryMap<Block, BlockData>,
    insts: PrimaryMap<Inst, InstData>,
    /// Block owning each instruction; `None` after removal.
    inst_block: Vec<Option<Block>>,
    /// Result value of each instruction (terminators have none).
    results: Vec<Option<Value>>,
    values: PrimaryMap<Value, ValueDef>,
    /// Def-use chains: instructions using each value (with multiplicity).
    uses: Vec<Vec<Inst>>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    /// Bumped by every mutation that can change the CFG shape (blocks
    /// or edges); see [`Function::cfg_version`].
    cfg_version: u64,
}

impl Function {
    /// Creates an empty function. Add an entry block before anything else.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            blocks: PrimaryMap::new(),
            insts: PrimaryMap::new(),
            inst_block: Vec::new(),
            results: Vec::new(),
            values: PrimaryMap::new(),
            uses: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            cfg_version: 0,
        }
    }

    /// A monotone counter of CFG-shape mutations: incremented by
    /// [`add_block`](Self::add_block), by inserting a terminator, and
    /// by [`redirect_branch_target`](Self::redirect_branch_target) —
    /// every mutator that can add blocks or change the edge relation.
    /// Instruction-level edits (non-terminator inserts/removals, use
    /// replacement, branch-*argument* changes) leave it untouched.
    ///
    /// This is the O(1) staleness signal for consumers that cache
    /// CFG-dependent analyses (the paper's precomputation): equal
    /// version on the same `Function` object ⇒ the CFG has not changed
    /// since.
    pub fn cfg_version(&self) -> u64 {
        self.cfg_version
    }

    // ---------------------------------------------------------- blocks

    /// Appends a new empty block. The first block becomes the entry.
    pub fn add_block(&mut self) -> Block {
        self.cfg_version += 1;
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.blocks.push(BlockData::default())
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been created yet.
    pub fn entry_block(&self) -> Block {
        assert!(!self.blocks.is_empty(), "function has no blocks");
        Block::from_index(0)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates all blocks in creation (layout) order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + use<> {
        (0..self.blocks.len()).map(Block::from_index)
    }

    /// The `i`-th created block (`block_by_index(0)` is the entry).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_blocks()`.
    pub fn block_by_index(&self, i: usize) -> Block {
        assert!(i < self.blocks.len(), "block index {i} out of range");
        Block::from_index(i)
    }

    /// Looks up a value by its printed name `vN` (the `N`-th created
    /// value). This matches the textual name whenever the source numbers
    /// values densely in definition order — which the printer always
    /// produces and all in-tree test sources follow.
    ///
    /// Returns `None` for malformed names or out-of-range indices.
    pub fn value(&self, name: &str) -> Option<Value> {
        let i: usize = name.strip_prefix('v')?.parse().ok()?;
        (i < self.values.len()).then(|| Value::from_index(i))
    }

    /// Looks up a block by its printed name `blockN` (the `N`-th
    /// created block) — the companion of [`value`](Self::value), used
    /// by the `fastlive` facade's name-addressed queries.
    ///
    /// Returns `None` for malformed names or out-of-range indices.
    pub fn block(&self, name: &str) -> Option<Block> {
        let i: usize = name.strip_prefix("block")?.parse().ok()?;
        (i < self.blocks.len()).then(|| Block::from_index(i))
    }

    /// Appends a parameter to `block` and returns the new value.
    pub fn append_block_param(&mut self, block: Block) -> Value {
        let index = self.blocks[block].params.len() as u32;
        let v = self.values.push(ValueDef::Param { block, index });
        self.uses.push(Vec::new());
        self.blocks[block].params.push(v);
        v
    }

    /// (parser support) Reserves `n` unbound value slots, so a source
    /// with textual forward references can have every definition's
    /// entity allocated — in textual definition order — before any use
    /// is appended. Each slot holds a placeholder `ValueDef` until
    /// bound by [`bind_block_param`](Self::bind_block_param) or
    /// [`append_inst_bound`](Self::append_inst_bound); the parser binds
    /// every slot before a function is returned to a caller.
    pub(crate) fn reserve_values(&mut self, n: usize) {
        for _ in 0..n {
            self.values.push(ValueDef::Param {
                block: Block::from_index(0),
                index: u32::MAX,
            });
            self.uses.push(Vec::new());
        }
    }

    /// (parser support) Binds reserved slot `v` as the next parameter
    /// of `block`, the slot-reusing twin of
    /// [`append_block_param`](Self::append_block_param).
    pub(crate) fn bind_block_param(&mut self, block: Block, v: Value) {
        let index = self.blocks[block].params.len() as u32;
        self.values[v] = ValueDef::Param { block, index };
        self.blocks[block].params.push(v);
    }

    /// (parser support) Appends `data` like
    /// [`append_inst`](Self::append_inst), binding its result to the
    /// reserved slot `result` instead of allocating a fresh value.
    pub(crate) fn append_inst_bound(
        &mut self,
        block: Block,
        data: InstData,
        result: Value,
    ) -> Inst {
        debug_assert!(data.has_result(), "bound append requires a result op");
        let pos = self.blocks[block].insts.len();
        self.insert_inst_impl(block, pos, data, Some(result))
    }

    /// The parameters of `block`.
    pub fn block_params(&self, block: Block) -> &[Value] {
        &self.blocks[block].params
    }

    /// The function parameters (= entry block parameters).
    pub fn params(&self) -> &[Value] {
        self.block_params(self.entry_block())
    }

    /// The instructions of `block` in order.
    pub fn block_insts(&self, block: Block) -> &[Inst] {
        &self.blocks[block].insts
    }

    /// The terminator of `block`, if the block is complete.
    pub fn terminator(&self, block: Block) -> Option<Inst> {
        let last = *self.blocks[block].insts.last()?;
        self.insts[last].is_terminator().then_some(last)
    }

    /// `true` once `block` ends in a terminator.
    pub fn is_terminated(&self, block: Block) -> bool {
        self.terminator(block).is_some()
    }

    // ------------------------------------------------------ instructions

    /// Appends an instruction to `block`, maintaining def-use chains and
    /// (for terminators) the CFG edges. Returns the instruction; its
    /// result value, if any, is available via [`Function::inst_result`].
    ///
    /// Prefer the [`ins`](Function::ins) builder for readable call sites.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already terminated or an operand value does
    /// not exist.
    pub fn append_inst(&mut self, block: Block, data: InstData) -> Inst {
        let pos = self.blocks[block].insts.len();
        self.insert_inst(block, pos, data)
    }

    /// Inserts an instruction at position `pos` of `block` (0 = first).
    /// Only terminators may occupy the final position of a terminated
    /// block's layout; inserting a terminator into a terminated block or
    /// a non-terminator after the terminator panics.
    ///
    /// # Panics
    ///
    /// See above; also panics on out-of-range `pos` or unknown operands.
    pub fn insert_inst(&mut self, block: Block, pos: usize, data: InstData) -> Inst {
        self.insert_inst_impl(block, pos, data, None)
    }

    fn insert_inst_impl(
        &mut self,
        block: Block,
        pos: usize,
        data: InstData,
        bound_result: Option<Value>,
    ) -> Inst {
        let n_insts = self.blocks[block].insts.len();
        assert!(pos <= n_insts, "insert position {pos} out of range");
        if data.is_terminator() {
            assert!(
                pos == n_insts && !self.is_terminated(block),
                "{block} already has a terminator"
            );
        } else {
            let limit = if self.is_terminated(block) {
                n_insts - 1
            } else {
                n_insts
            };
            assert!(
                pos <= limit,
                "cannot insert instruction after the terminator of {block}"
            );
        }
        data.for_each_operand(|v| {
            assert!(v.index() < self.values.len(), "operand {v} does not exist");
        });

        let inst = self.insts.push(data);
        self.inst_block.push(Some(block));
        // Register uses.
        let data_ref = &self.insts[inst];
        let mut used: Vec<Value> = Vec::new();
        data_ref.for_each_operand(|v| used.push(v));
        for v in used {
            self.uses[v.index()].push(inst);
        }
        // Result value: a fresh entity, or — on the parser's
        // forward-reference path — a pre-reserved slot bound here.
        let result = if self.insts[inst].has_result() {
            Some(match bound_result {
                Some(v) => {
                    self.values[v] = ValueDef::Inst(inst);
                    v
                }
                None => {
                    let v = self.values.push(ValueDef::Inst(inst));
                    self.uses.push(Vec::new());
                    v
                }
            })
        } else {
            None
        };
        self.results.push(result);
        // CFG edges.
        if self.insts[inst].is_terminator() {
            self.cfg_version += 1;
            for t in self.insts[inst].branch_targets() {
                let dest = t.block;
                assert!(dest.index() < self.blocks.len(), "branch to unknown {dest}");
            }
            let targets: Vec<Block> = self.insts[inst]
                .branch_targets()
                .iter()
                .map(|t| t.block)
                .collect();
            for dest in targets {
                self.succs[block.index()].push(dest.as_u32());
                self.preds[dest.index()].push(block.as_u32());
            }
        }
        self.blocks[block].insts.insert(pos, inst);
        inst
    }

    /// Removes a non-terminator instruction whose result is unused.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is a terminator, already removed, or its
    /// result still has uses.
    pub fn remove_inst(&mut self, inst: Inst) {
        let block = self.inst_block[inst.index()].expect("instruction already removed");
        assert!(
            !self.insts[inst].is_terminator(),
            "cannot remove a terminator"
        );
        if let Some(r) = self.results[inst.index()] {
            assert!(
                self.uses[r.index()].is_empty(),
                "result {r} of removed {inst} still used"
            );
        }
        let mut used: Vec<Value> = Vec::new();
        self.insts[inst].for_each_operand(|v| used.push(v));
        for v in used {
            remove_one(&mut self.uses[v.index()], inst);
        }
        let insts = &mut self.blocks[block].insts;
        let pos = insts
            .iter()
            .position(|&i| i == inst)
            .expect("inst in its block list");
        insts.remove(pos);
        self.inst_block[inst.index()] = None;
    }

    /// The payload of `inst`.
    pub fn inst_data(&self, inst: Inst) -> &InstData {
        &self.insts[inst]
    }

    /// The result value of `inst` (`None` for terminators).
    pub fn inst_result(&self, inst: Inst) -> Option<Value> {
        self.results[inst.index()]
    }

    /// The block containing `inst` (`None` if removed).
    pub fn inst_block(&self, inst: Inst) -> Option<Block> {
        self.inst_block[inst.index()]
    }

    /// Position of `inst` within its block (0-based). O(block length).
    ///
    /// # Panics
    ///
    /// Panics if the instruction was removed.
    pub fn inst_position(&self, inst: Inst) -> usize {
        let block = self.inst_block(inst).expect("instruction was removed");
        self.blocks[block]
            .insts
            .iter()
            .position(|&i| i == inst)
            .expect("inst in its block list")
    }

    /// Number of instructions ever created (including removed ones).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    // ---------------------------------------------------- program points

    /// The point just after `inst`, or `None` if the instruction was
    /// removed from its block. O(block length) for the position lookup.
    pub fn point_after(&self, inst: Inst) -> Option<ProgramPoint> {
        let block = self.inst_block(inst)?;
        let pos = self.blocks[block].insts.iter().position(|&i| i == inst)?;
        Some(ProgramPoint::after(block, pos))
    }

    /// The point just before `inst` (the block entry for the first
    /// instruction), or `None` if the instruction was removed.
    pub fn point_before(&self, inst: Inst) -> Option<ProgramPoint> {
        let block = self.inst_block(inst)?;
        let pos = self.blocks[block].insts.iter().position(|&i| i == inst)?;
        Some(match pos {
            0 => ProgramPoint::block_entry(block),
            _ => ProgramPoint::after(block, pos - 1),
        })
    }

    /// The program point where `v` becomes available: the entry of its
    /// block for parameters (φ-results bind at block entry), the point
    /// just after the defining instruction otherwise.
    ///
    /// Returns `None` when the defining instruction has been removed —
    /// a detached definition has no position, and callers (the point
    /// queries of `fastlive-core`) surface that as an error instead of
    /// panicking.
    pub fn def_point(&self, v: Value) -> Option<ProgramPoint> {
        match self.values[v] {
            ValueDef::Param { block, .. } => Some(ProgramPoint::block_entry(block)),
            ValueDef::Inst(inst) => self.point_after(inst),
        }
    }

    /// All points of `block` in program order: the entry point, then
    /// one point after each instruction.
    pub fn block_points(&self, block: Block) -> impl Iterator<Item = ProgramPoint> + use<> {
        let n = self.blocks[block].insts.len();
        std::iter::once(ProgramPoint::block_entry(block))
            .chain((0..n).map(move |i| ProgramPoint::after(block, i)))
    }

    /// Is `v`'s definition **at or before** point `p` within `p`'s
    /// block — i.e. does the value already exist at `p` as far as
    /// layout is concerned? Definitions in *other* blocks always
    /// report `true`: cross-block positioning is a dominance question,
    /// which the liveness query itself answers. Returns `None` when
    /// the defining instruction was removed.
    ///
    /// This is the "already defined" leg of the point-liveness
    /// decomposition. Parameters bind at their block's entry (at or
    /// before every point); instruction definitions in `p`'s block are
    /// decided by membership in the layout *prefix*
    /// `insts[..p.next_index()]` — no full-block position resolution.
    pub fn is_defined_at(&self, v: Value, p: ProgramPoint) -> Option<bool> {
        match self.values[v] {
            ValueDef::Param { .. } => Some(true),
            ValueDef::Inst(i) => {
                let db = self.inst_block[i.index()]?;
                if db != p.block() {
                    return Some(true);
                }
                let insts = &self.blocks[db].insts;
                let prefix = &insts[..p.next_index().min(insts.len())];
                Some(prefix.contains(&i))
            }
        }
    }

    /// Does `v` have a use strictly after point `p`, inside `p`'s
    /// block? This is the "last use after position" primitive of the
    /// point-liveness decomposition.
    ///
    /// The scan walks the def-use chain once; each use sited in the
    /// block is tested by membership in the instruction-list *suffix*
    /// `insts[p.next_index()..]` — a flat `u32` equality scan the
    /// compiler vectorizes to word-level compares — instead of
    /// resolving the use's absolute position with a full-block walk
    /// per use (what the old destruct-private shim did).
    pub fn has_use_after(&self, v: Value, p: ProgramPoint) -> bool {
        let block = p.block();
        let suffix = match self.blocks[block].insts.get(p.next_index()..) {
            Some(s) if !s.is_empty() => s,
            _ => return false,
        };
        self.uses[v.index()]
            .iter()
            .any(|&u| self.inst_block[u.index()] == Some(block) && suffix.contains(&u))
    }

    // ----------------------------------------------------------- values

    /// Where `v` is defined.
    pub fn value_def(&self, v: Value) -> ValueDef {
        self.values[v]
    }

    /// The block defining `v` — the paper's `def(a)`.
    pub fn def_block(&self, v: Value) -> Block {
        match self.values[v] {
            ValueDef::Param { block, .. } => block,
            ValueDef::Inst(inst) => self.inst_block(inst).expect("definition was removed"),
        }
    }

    /// The def-use chain of `v`: every instruction using it, with
    /// multiplicity, in no particular order.
    pub fn uses(&self, v: Value) -> &[Inst] {
        &self.uses[v.index()]
    }

    /// The blocks where `v` is used in the sense of Definition 1: the
    /// block of each using instruction. Branch arguments are uses at the
    /// predecessor block (where the branch lives), exactly as the paper
    /// requires for φ-uses. Duplicates possible.
    pub fn use_blocks(&self, v: Value) -> impl Iterator<Item = Block> + '_ {
        self.uses[v.index()]
            .iter()
            .map(|&i| self.inst_block(i).expect("use site was removed"))
    }

    /// Number of values.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Iterates all values.
    pub fn values(&self) -> impl Iterator<Item = Value> + use<> {
        (0..self.values.len()).map(Value::from_index)
    }

    // -------------------------------------------------------- mutation

    /// Replaces every use of `old` with `new`, updating def-use chains.
    pub fn replace_all_uses(&mut self, old: Value, new: Value) {
        self.replace_uses_where(old, new, |_| true);
    }

    /// Replaces every use of `old` with `new` except those inside
    /// `except` (used when inserting `new = copy old`).
    pub fn replace_uses_except(&mut self, old: Value, new: Value, except: Inst) {
        self.replace_uses_where(old, new, |i| i != except);
    }

    /// Replaces uses of `old` with `new` in instructions satisfying
    /// `keep`.
    pub fn replace_uses_where(&mut self, old: Value, new: Value, keep: impl Fn(Inst) -> bool) {
        assert_ne!(old, new, "cannot replace a value with itself");
        let sites = std::mem::take(&mut self.uses[old.index()]);
        let mut kept = Vec::new();
        for inst in sites {
            if keep(inst) {
                self.insts[inst].map_operands(|v| if v == old { new } else { v });
                self.uses[new.index()].push(inst);
            } else {
                kept.push(inst);
            }
        }
        self.uses[old.index()] = kept;
    }

    /// Replaces the `arg_index`-th argument of the `target_index`-th
    /// branch target of `inst` (a terminator) with `new`, updating use
    /// chains. This is how SSA destruction swaps a φ-argument for a
    /// freshly inserted copy.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set_branch_arg(
        &mut self,
        inst: Inst,
        target_index: usize,
        arg_index: usize,
        new: Value,
    ) {
        assert!(
            new.index() < self.values.len(),
            "operand {new} does not exist"
        );
        let old = {
            let mut targets = self.insts[inst].branch_targets_mut();
            let call = targets
                .get_mut(target_index)
                .expect("target index out of range");
            let slot = call
                .args
                .get_mut(arg_index)
                .expect("arg index out of range");
            let old = *slot;
            *slot = new;
            old
        };
        if old != new {
            remove_one(&mut self.uses[old.index()], inst);
            self.uses[new.index()].push(inst);
        }
    }

    /// Redirects the `target_index`-th branch target of terminator `inst`
    /// to `new_block`, passing `new_args`, and fixes CFG edges and use
    /// chains. Used by critical-edge splitting.
    ///
    /// # Panics
    ///
    /// Panics on bad indices or unknown values/blocks.
    pub fn redirect_branch_target(
        &mut self,
        inst: Inst,
        target_index: usize,
        new_block: Block,
        new_args: Vec<Value>,
    ) {
        assert!(
            new_block.index() < self.blocks.len(),
            "branch to unknown {new_block}"
        );
        for &a in &new_args {
            assert!(a.index() < self.values.len(), "operand {a} does not exist");
        }
        let from = self.inst_block(inst).expect("terminator was removed");
        let (old_block, old_args) = {
            let mut targets = self.insts[inst].branch_targets_mut();
            let call = targets
                .get_mut(target_index)
                .expect("target index out of range");
            let old_block = call.block;
            let old_args = std::mem::replace(&mut call.args, new_args.clone());
            call.block = new_block;
            (old_block, old_args)
        };
        for a in old_args {
            remove_one(&mut self.uses[a.index()], inst);
        }
        for a in new_args {
            self.uses[a.index()].push(inst);
        }
        remove_one(&mut self.succs[from.index()], old_block.as_u32());
        remove_one(&mut self.preds[old_block.index()], from.as_u32());
        self.succs[from.index()].push(new_block.as_u32());
        self.preds[new_block.index()].push(from.as_u32());
        self.cfg_version += 1;
    }

    /// Removes the `index`-th parameter of `block` together with the
    /// corresponding branch argument of every predecessor terminator.
    /// The parameter value must be unused; it stays allocated but
    /// detached (no uses, not listed among the block's parameters).
    ///
    /// # Panics
    ///
    /// Panics if `block` is the entry block (its parameters are the
    /// function signature), `index` is out of range, or the parameter
    /// still has uses.
    pub fn remove_block_param(&mut self, block: Block, index: usize) {
        assert_ne!(
            block,
            self.entry_block(),
            "entry parameters are the function signature"
        );
        let params = &self.blocks[block].params;
        assert!(index < params.len(), "parameter index {index} out of range");
        let param = params[index];
        assert!(
            self.uses[param.index()].is_empty(),
            "cannot remove {param}: it still has uses"
        );
        self.blocks[block].params.remove(index);
        // Re-index the parameters that shifted down.
        let shifted: Vec<Value> = self.blocks[block].params[index..].to_vec();
        for (off, v) in shifted.into_iter().enumerate() {
            self.values[v] = ValueDef::Param {
                block,
                index: (index + off) as u32,
            };
        }
        // Drop the matching argument from every predecessor branch.
        let preds: Vec<NodeId> = {
            let mut p = self.preds[block.index()].clone();
            p.sort_unstable();
            p.dedup();
            p
        };
        for p in preds {
            let pb = Block::from_index(p as usize);
            let term = self.terminator(pb).expect("predecessor is terminated");
            let mut removed_args = Vec::new();
            {
                let mut targets = self.insts[term].branch_targets_mut();
                for call in targets.iter_mut() {
                    if call.block == block {
                        removed_args.push(call.args.remove(index));
                    }
                }
            }
            for a in removed_args {
                remove_one(&mut self.uses[a.index()], term);
            }
        }
    }

    /// Convenience instruction builder positioned at the end of `block`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastlive_ir::Function;
    ///
    /// let mut f = Function::new("f");
    /// let b = f.add_block();
    /// let k = f.ins(b).iconst(7);
    /// f.ins(b).ret(vec![k]);
    /// ```
    pub fn ins(&mut self, block: Block) -> crate::builder::InsBuilder<'_> {
        crate::builder::InsBuilder::new(self, block)
    }

    /// Rebuilds the def-use chains from scratch and compares with the
    /// maintained ones — a consistency oracle for tests.
    ///
    /// Returns `Err` with a description on the first mismatch.
    pub fn check_use_chains(&self) -> Result<(), String> {
        let mut expect: Vec<Vec<Inst>> = vec![Vec::new(); self.values.len()];
        for b in self.blocks() {
            for &inst in self.block_insts(b) {
                self.insts[inst].for_each_operand(|v| expect[v.index()].push(inst));
            }
        }
        for v in self.values() {
            let mut a = self.uses[v.index()].clone();
            let mut b = expect[v.index()].clone();
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                return Err(format!("use chain of {v} is {a:?}, expected {b:?}"));
            }
        }
        Ok(())
    }
}

/// The CFG view of a function: nodes are block indices. Edges carry the
/// multiplicity of branch targets (a two-way branch to the same block
/// contributes two edges), matching [`fastlive_graph::DiGraph`] semantics.
impl Cfg for Function {
    fn num_nodes(&self) -> usize {
        self.blocks.len()
    }
    fn entry(&self) -> NodeId {
        self.entry_block().as_u32()
    }
    fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n as usize]
    }
    fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n as usize]
    }
}

fn remove_one<T: PartialEq>(v: &mut Vec<T>, x: T) {
    let pos = v
        .iter()
        .position(|e| *e == x)
        .expect("element to remove is present");
    v.swap_remove(pos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinaryOp, BlockCall, UnaryOp};

    fn sample() -> (Function, Block, Block, Block) {
        // block0(x): brif x, block1, block2
        // block1: v = x+x; jump block2
        // block2: return x
        let mut f = Function::new("sample");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let x = f.append_block_param(b0);
        f.append_inst(
            b0,
            InstData::Brif {
                cond: x,
                then_dest: BlockCall::no_args(b1),
                else_dest: BlockCall::no_args(b2),
            },
        );
        f.append_inst(
            b1,
            InstData::Binary {
                op: BinaryOp::Iadd,
                args: [x, x],
            },
        );
        f.append_inst(
            b1,
            InstData::Jump {
                dest: BlockCall::no_args(b2),
            },
        );
        f.append_inst(b2, InstData::Return { args: vec![x] });
        (f, b0, b1, b2)
    }

    #[test]
    fn entry_is_first_block() {
        let (f, b0, ..) = sample();
        assert_eq!(f.entry_block(), b0);
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    fn name_lookups_resolve_printed_names() {
        let (f, b0, b1, b2) = sample();
        assert_eq!(f.block("block0"), Some(b0));
        assert_eq!(f.block("block1"), Some(b1));
        assert_eq!(f.block("block2"), Some(b2));
        assert_eq!(f.block("block3"), None);
        assert_eq!(f.block("blk1"), None);
        assert_eq!(f.block("block"), None);
        assert_eq!(f.value("v0"), Some(f.params()[0]));
        assert_eq!(f.value("v99"), None);
    }

    #[test]
    fn cfg_edges_follow_terminators() {
        let (f, b0, b1, b2) = sample();
        assert_eq!(f.succs(b0.as_u32()), &[b1.as_u32(), b2.as_u32()]);
        assert_eq!(f.succs(b1.as_u32()), &[b2.as_u32()]);
        assert!(f.succs(b2.as_u32()).is_empty());
        let mut p2 = f.preds(b2.as_u32()).to_vec();
        p2.sort_unstable();
        assert_eq!(p2, vec![0, 1]);
        assert_eq!(f.num_edges(), 3);
    }

    #[test]
    fn def_use_chains_track_operands() {
        let (f, b0, b1, b2) = sample();
        let x = f.params()[0];
        // x used by: brif (b0), iadd twice (b1), return (b2).
        assert_eq!(f.uses(x).len(), 4);
        let mut blocks: Vec<_> = f.use_blocks(x).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![b0, b1, b1, b2]);
        assert_eq!(f.def_block(x), b0);
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    fn inst_results_and_positions() {
        let (f, _, b1, _) = sample();
        let add = f.block_insts(b1)[0];
        let r = f.inst_result(add).expect("iadd has a result");
        assert_eq!(f.value_def(r), ValueDef::Inst(add));
        assert_eq!(f.def_block(r), b1);
        assert_eq!(f.inst_position(add), 0);
        let jump = f.block_insts(b1)[1];
        assert_eq!(f.inst_result(jump), None);
        assert_eq!(f.inst_position(jump), 1);
    }

    #[test]
    #[should_panic(expected = "already has a terminator")]
    fn double_terminator_rejected() {
        let (mut f, b0, _, _) = sample();
        f.append_inst(b0, InstData::Return { args: vec![] });
    }

    #[test]
    #[should_panic(expected = "after the terminator")]
    fn insert_after_terminator_rejected() {
        let (mut f, b0, ..) = sample();
        let pos = f.block_insts(b0).len();
        f.insert_inst(b0, pos, InstData::IntConst { imm: 1 });
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn unknown_operand_rejected() {
        let mut f = Function::new("f");
        let b = f.add_block();
        f.append_inst(
            b,
            InstData::Unary {
                op: UnaryOp::Copy,
                arg: Value::from_index(99),
            },
        );
    }

    #[test]
    fn insert_before_terminator() {
        let (mut f, b0, ..) = sample();
        let pos = f.block_insts(b0).len() - 1;
        let inst = f.insert_inst(b0, pos, InstData::IntConst { imm: 5 });
        assert_eq!(f.block_insts(b0)[pos], inst);
        assert_eq!(f.inst_position(inst), 0);
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    fn remove_inst_unregisters_uses() {
        let mut f = Function::new("f");
        let b = f.add_block();
        let x = f.append_block_param(b);
        let dead = f.append_inst(
            b,
            InstData::Unary {
                op: UnaryOp::Ineg,
                arg: x,
            },
        );
        f.append_inst(b, InstData::Return { args: vec![x] });
        assert_eq!(f.uses(x).len(), 2);
        f.remove_inst(dead);
        assert_eq!(f.uses(x).len(), 1);
        assert_eq!(f.inst_block(dead), None);
        assert_eq!(f.block_insts(b).len(), 1);
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    #[should_panic(expected = "still used")]
    fn remove_inst_with_live_result_rejected() {
        let mut f = Function::new("f");
        let b = f.add_block();
        let k = f.append_inst(b, InstData::IntConst { imm: 3 });
        let kv = f.inst_result(k).unwrap();
        f.append_inst(b, InstData::Return { args: vec![kv] });
        f.remove_inst(k);
    }

    #[test]
    fn replace_all_uses_moves_chains() {
        let (mut f, _, b1, _) = sample();
        let x = f.params()[0];
        let add = f.block_insts(b1)[0];
        let r = f.inst_result(add).unwrap();
        let n_x = f.uses(x).len();
        f.replace_all_uses(x, r);
        assert!(f.uses(x).is_empty());
        assert_eq!(f.uses(r).len(), n_x);
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    fn replace_uses_except_keeps_one_site() {
        let (mut f, b0, b1, _) = sample();
        let x = f.params()[0];
        let add = f.block_insts(b1)[0];
        let r = f.inst_result(add).unwrap();
        f.replace_uses_except(x, r, add);
        // The iadd still uses x twice, everything else uses r.
        assert_eq!(f.uses(x).len(), 2);
        assert!(f.uses(x).iter().all(|&i| i == add));
        let brif = f.block_insts(b0)[0];
        match f.inst_data(brif) {
            InstData::Brif { cond, .. } => assert_eq!(*cond, r),
            other => panic!("unexpected {other:?}"),
        }
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    fn branch_args_are_uses_at_pred_block() {
        // block0(x): jump block1(x); block1(p): return p
        let mut f = Function::new("phi");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let x = f.append_block_param(b0);
        let p = f.append_block_param(b1);
        f.append_inst(
            b0,
            InstData::Jump {
                dest: BlockCall::with_args(b1, vec![x]),
            },
        );
        f.append_inst(b1, InstData::Return { args: vec![p] });
        // Definition 1: the φ-use of x happens at block0 (the predecessor).
        let blocks: Vec<_> = f.use_blocks(x).collect();
        assert_eq!(blocks, vec![b0]);
        assert_eq!(f.def_block(p), b1);
    }

    #[test]
    fn set_branch_arg_updates_chains() {
        let mut f = Function::new("f");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let x = f.append_block_param(b0);
        let y = f.append_block_param(b0);
        f.append_block_param(b1);
        let j = f.append_inst(
            b0,
            InstData::Jump {
                dest: BlockCall::with_args(b1, vec![x]),
            },
        );
        assert_eq!(f.uses(x).len(), 1);
        f.set_branch_arg(j, 0, 0, y);
        assert!(f.uses(x).is_empty());
        assert_eq!(f.uses(y), &[j]);
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    fn redirect_branch_target_rewires_cfg() {
        let (mut f, b0, b1, b2) = sample();
        let mid = f.add_block();
        f.append_inst(
            mid,
            InstData::Jump {
                dest: BlockCall::no_args(b1),
            },
        );
        let brif = f.block_insts(b0)[0];
        f.redirect_branch_target(brif, 0, mid, vec![]);
        assert_eq!(f.succs(b0.as_u32()), &[b2.as_u32(), mid.as_u32()]);
        assert!(f.preds(b1.as_u32()).contains(&mid.as_u32()));
        assert!(!f.preds(b1.as_u32()).contains(&b0.as_u32()));
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    fn cfg_version_tracks_exactly_the_cfg_mutators() {
        let mut f = Function::new("v");
        assert_eq!(f.cfg_version(), 0);
        let b0 = f.add_block();
        let b1 = f.add_block();
        let v2 = f.cfg_version();
        assert_eq!(v2, 2, "each add_block bumps");

        // Non-terminator instructions never bump.
        let x = f.ins(b0).iconst(1);
        let y = f.ins(b0).iadd(x, x);
        assert_eq!(f.cfg_version(), v2);

        // Terminators add edges: bump.
        let j = f.ins(b0).jump(b1, vec![]);
        let v3 = f.cfg_version();
        assert!(v3 > v2);
        f.ins(b1).ret(vec![y]);
        let v4 = f.cfg_version();
        assert!(v4 > v3);

        // Use-level edits never bump...
        f.replace_all_uses(x, y);
        let dead = f.insert_inst(
            b1,
            0,
            InstData::Unary {
                op: crate::UnaryOp::Ineg,
                arg: y,
            },
        );
        f.remove_inst(dead);
        assert_eq!(f.cfg_version(), v4);

        // ... but rewiring a branch target does.
        let b2 = f.add_block();
        f.ins(b2).ret(vec![]);
        let before = f.cfg_version();
        f.redirect_branch_target(j, 0, b2, vec![]);
        assert!(f.cfg_version() > before);
    }

    #[test]
    fn def_points_and_inst_points() {
        let (f, b0, b1, _) = sample();
        let x = f.params()[0];
        // Parameters bind at the block entry.
        assert_eq!(f.def_point(x), Some(ProgramPoint::block_entry(b0)));
        let add = f.block_insts(b1)[0];
        let r = f.inst_result(add).unwrap();
        assert_eq!(f.def_point(r), Some(ProgramPoint::after(b1, 0)));
        assert_eq!(f.point_after(add), Some(ProgramPoint::after(b1, 0)));
        assert_eq!(f.point_before(add), Some(ProgramPoint::block_entry(b1)));
        let jump = f.block_insts(b1)[1];
        assert_eq!(f.point_before(jump), Some(ProgramPoint::after(b1, 0)));
    }

    #[test]
    fn detached_definition_has_no_point() {
        // A removed defining instruction leaves its result value
        // detached: `def_point` reports `None` instead of panicking
        // (the old `expect("definition removed")` path).
        let mut f = Function::new("f");
        let b = f.add_block();
        let dead = f.append_inst(b, InstData::IntConst { imm: 3 });
        let dv = f.inst_result(dead).unwrap();
        f.append_inst(b, InstData::Return { args: vec![] });
        assert!(f.def_point(dv).is_some());
        f.remove_inst(dead);
        assert_eq!(f.def_point(dv), None);
        assert_eq!(f.point_after(dead), None);
        assert_eq!(f.point_before(dead), None);
    }

    #[test]
    fn is_defined_at_is_prefix_membership() {
        let (f, b0, b1, _) = sample();
        let x = f.params()[0];
        let add = f.block_insts(b1)[0];
        let r = f.inst_result(add).unwrap();
        // Parameters exist everywhere (cross-block is a dominance
        // question the liveness query answers).
        assert_eq!(
            f.is_defined_at(x, ProgramPoint::block_entry(b0)),
            Some(true)
        );
        assert_eq!(
            f.is_defined_at(x, ProgramPoint::block_entry(b1)),
            Some(true)
        );
        // r is defined by the iadd at index 0 of b1.
        assert_eq!(
            f.is_defined_at(r, ProgramPoint::block_entry(b1)),
            Some(false)
        );
        assert_eq!(f.is_defined_at(r, ProgramPoint::after(b1, 0)), Some(true));
        // In other blocks the layout check always passes.
        assert_eq!(
            f.is_defined_at(r, ProgramPoint::block_entry(b0)),
            Some(true)
        );
    }

    #[test]
    fn has_use_after_respects_positions() {
        let (f, b0, b1, b2) = sample();
        let x = f.params()[0];
        // x is used by the brif (b0, index 0): after the entry point,
        // not after the brif itself.
        assert!(f.has_use_after(x, ProgramPoint::block_entry(b0)));
        assert!(!f.has_use_after(x, ProgramPoint::after(b0, 0)));
        // In b1 the iadd (index 0) uses x; the jump does not.
        assert!(f.has_use_after(x, ProgramPoint::block_entry(b1)));
        assert!(!f.has_use_after(x, ProgramPoint::after(b1, 0)));
        // The return in b2 uses x.
        assert!(f.has_use_after(x, ProgramPoint::block_entry(b2)));
        assert!(!f.has_use_after(x, ProgramPoint::after(b2, 0)));
        // Past-the-end points never see uses.
        assert!(!f.has_use_after(x, ProgramPoint::after(b2, 99)));
    }

    #[test]
    fn parallel_edges_from_brif_to_same_block() {
        let mut f = Function::new("f");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let c = f.append_inst(b0, InstData::IntConst { imm: 1 });
        let cv = f.inst_result(c).unwrap();
        f.append_inst(
            b0,
            InstData::Brif {
                cond: cv,
                then_dest: BlockCall::no_args(b1),
                else_dest: BlockCall::no_args(b1),
            },
        );
        f.append_inst(b1, InstData::Return { args: vec![] });
        assert_eq!(f.succs(0), &[1, 1]);
        assert_eq!(f.preds(1), &[0, 0]);
    }
}
