//! Textual rendering of functions. The format round-trips through
//! [`parse_function`](crate::parse_function).
//!
//! ```text
//! function %name {
//! block0(v0, v1):
//!     v2 = iconst 7
//!     v3 = iadd v0, v2
//!     brif v3, block1(v3), block2
//! block1(v4):
//!     jump block2
//! block2:
//!     return v4
//! }
//! ```

use std::fmt;

use crate::entities::{Block, Inst};
use crate::function::Function;
use crate::instr::{BlockCall, InstData};

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "function %")?;
        write_name(f, &self.name)?;
        writeln!(f, " {{")?;
        for block in self.blocks() {
            write_block_header(f, self, block)?;
            for &inst in self.block_insts(block) {
                write!(f, "    ")?;
                write_inst(f, self, inst)?;
                writeln!(f)?;
            }
        }
        write!(f, "}}")
    }
}

/// Can `name` be printed bare after `%` and re-lexed as one identifier?
/// Mirrors the lexer's identifier rule exactly; everything else is
/// printed as a quoted, escaped string so names always round-trip.
pub(crate) fn is_bare_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Writes a function name, quoting and escaping unless it is a bare
/// identifier. The escapes are the ones the parser's string lexer
/// understands (`\"`, `\\`, `\n`, `\t`, `\r`, `\u{hex}` for the other
/// control characters).
fn write_name(f: &mut fmt::Formatter<'_>, name: &str) -> fmt::Result {
    if is_bare_name(name) {
        return write!(f, "{name}");
    }
    write!(f, "\"")?;
    for c in name.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            '\r' => write!(f, "\\r")?,
            c if (c as u32) < 0x20 || c == '\u{7f}' => write!(f, "\\u{{{:x}}}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn write_block_header(f: &mut fmt::Formatter<'_>, func: &Function, block: Block) -> fmt::Result {
    write!(f, "{block}")?;
    let params = func.block_params(block);
    if !params.is_empty() {
        write!(f, "(")?;
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")?;
    }
    writeln!(f, ":")
}

fn write_call(f: &mut fmt::Formatter<'_>, call: &BlockCall) -> fmt::Result {
    write!(f, "{}", call.block)?;
    if !call.args.is_empty() {
        write!(f, "(")?;
        for (i, a) in call.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
    }
    Ok(())
}

fn write_inst(f: &mut fmt::Formatter<'_>, func: &Function, inst: Inst) -> fmt::Result {
    if let Some(r) = func.inst_result(inst) {
        write!(f, "{r} = ")?;
    }
    match func.inst_data(inst) {
        InstData::IntConst { imm } => write!(f, "iconst {imm}"),
        InstData::Unary { op, arg } => write!(f, "{} {arg}", op.mnemonic()),
        InstData::Binary { op, args } => {
            write!(f, "{} {}, {}", op.mnemonic(), args[0], args[1])
        }
        InstData::Jump { dest } => {
            write!(f, "jump ")?;
            write_call(f, dest)
        }
        InstData::Brif {
            cond,
            then_dest,
            else_dest,
        } => {
            write!(f, "brif {cond}, ")?;
            write_call(f, then_dest)?;
            write!(f, ", ")?;
            write_call(f, else_dest)
        }
        InstData::Return { args } => {
            write!(f, "return")?;
            for (i, a) in args.iter().enumerate() {
                write!(f, "{}{a}", if i == 0 { " " } else { ", " })?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_documented_shape() {
        let mut f = Function::new("demo");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let x = f.append_block_param(b0);
        let p = f.append_block_param(b1);
        let k = f.ins(b0).iconst(7);
        let s = f.ins(b0).iadd(x, k);
        f.ins(b0).brif(s, b1, vec![s], b2, vec![]);
        f.ins(b1).jump(b2, vec![]);
        f.ins(b2).ret(vec![p]);

        let text = f.to_string();
        let expect = "\
function %demo {
block0(v0):
    v2 = iconst 7
    v3 = iadd v0, v2
    brif v3, block1(v3), block2
block1(v1):
    jump block2
block2:
    return v1
}";
        assert_eq!(text, expect);
    }

    #[test]
    fn return_with_multiple_values_and_empty() {
        let mut f = Function::new("r");
        let b = f.add_block();
        let a = f.ins(b).iconst(1);
        let c = f.ins(b).iconst(2);
        f.ins(b).ret(vec![a, c]);
        assert!(f.to_string().contains("return v0, v1"));

        let mut g = Function::new("void");
        let b = g.add_block();
        g.ins(b).ret(vec![]);
        assert!(g.to_string().contains("    return\n"));
    }

    #[test]
    fn copy_and_unary_render() {
        let mut f = Function::new("u");
        let b = f.add_block();
        let x = f.ins(b).iconst(3);
        let c = f.ins(b).copy(x);
        let n = f.ins(b).ineg(c);
        f.ins(b).ret(vec![n]);
        let s = f.to_string();
        assert!(s.contains("v1 = copy v0"));
        assert!(s.contains("v2 = ineg v1"));
    }
}
