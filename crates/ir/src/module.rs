//! [`Module`]: a multi-function container with textual round-trip
//! support.
//!
//! A module is the unit the analysis engine
//! (`fastlive-engine`) operates on: an ordered list of [`Function`]s
//! addressed by dense [`FuncId`]s, parsed from and printed to a source
//! holding several `function %name { ... }` units
//! ([`parse_module`](crate::parse_module)). The module itself imposes
//! no linkage semantics — functions don't call each other in this IR —
//! it exists so that whole-program analyses can batch, parallelize and
//! cache per-function work.

use std::fmt;

use crate::function::Function;

/// Index of a function within a [`Module`]: dense, in creation order,
/// stable across function *edits* (only [`Module::push`] mints new
/// ids).
pub type FuncId = usize;

/// An ordered collection of [`Function`]s.
///
/// # Examples
///
/// ```
/// use fastlive_ir::{parse_module, Module};
///
/// let m = parse_module(
///     "function %double { block0(v0): v1 = iadd v0, v0  return v1 }
///      function %zero { block0: v0 = iconst 0  return v0 }",
/// )?;
/// assert_eq!(m.len(), 2);
/// let id = m.by_name("zero").unwrap();
/// assert_eq!(m.func(id).name, "zero");
/// // Printing and re-parsing is a fixed point.
/// let reparsed = parse_module(&m.to_string())?;
/// assert_eq!(m.to_string(), reparsed.to_string());
/// # Ok::<(), fastlive_ir::ParseError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Module {
    functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module {
            functions: Vec::new(),
        }
    }

    /// Appends a function, returning its [`FuncId`].
    pub fn push(&mut self, func: Function) -> FuncId {
        self.functions.push(func);
        self.functions.len() - 1
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// `true` if the module holds no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// All functions, indexable by [`FuncId`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable access to all functions (for transformation passes).
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// The function with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id]
    }

    /// Mutable access to the function with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id]
    }

    /// Looks up a function by name (linear scan — module-level passes
    /// address functions by [`FuncId`], names are for humans).
    pub fn by_name(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Iterates `(id, function)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions.iter().enumerate()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    #[test]
    fn push_and_lookup() {
        let mut m = Module::new();
        assert!(m.is_empty());
        let a = m.push(Function::new("a"));
        let b = m.push(Function::new("b"));
        assert_eq!(m.len(), 2);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(m.by_name("b"), Some(b));
        assert_eq!(m.by_name("c"), None);
        assert_eq!(m.func(a).name, "a");
        m.func_mut(b).name = "renamed".into();
        assert_eq!(m.by_name("renamed"), Some(b));
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn display_round_trips() {
        let src = "function %one { block0(v0):
            v1 = iconst 1
            brif v1, block1(v1), block2
        block1(v2):
            jump block2
        block2:
            return v0 }
        function %two { block0: return }";
        let m = parse_module(src).expect("parses");
        let printed = m.to_string();
        let again = parse_module(&printed).expect("reparses");
        assert_eq!(printed, again.to_string());
        // Units are separated by one blank line.
        assert!(printed.contains("}\n\nfunction %two"));
    }

    #[test]
    fn entity_numbering_restarts_per_function() {
        let m = parse_module(
            "function %a { block0(v0): return v0 }
             function %b { block0(v0): v1 = ineg v0  return v1 }",
        )
        .expect("parses");
        // Both functions own a v0 of their own.
        assert_eq!(m.func(0).num_values(), 1);
        assert_eq!(m.func(1).num_values(), 2);
        for (_, f) in m.iter() {
            f.check_use_chains().expect("chains consistent");
        }
    }
}
