//! Entity references and the arena maps that store them.
//!
//! The IR follows the Cranelift convention: blocks, instructions and SSA
//! values are small copyable indices ([`Block`], [`Inst`], [`Value`]) into
//! per-function arenas ([`PrimaryMap`]). Side tables are plain vectors
//! indexed by the same numbers.

/// Implements a `u32`-backed entity reference with a display prefix.
macro_rules! entity_ref {
    ($(#[$attr:meta])* $name:ident, $prefix:expr) => {
        $(#[$attr])*
        #[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $name {
            /// Creates a reference from a raw index.
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i < u32::MAX as usize, "entity index overflow");
                $name(i as u32)
            }

            /// The raw index of this entity.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw index as `u32` (handy for graph `NodeId`s).
            pub fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

entity_ref! {
    /// A basic block of a [`Function`](crate::Function). Doubles as the
    /// CFG node id: `block.as_u32()` is the
    /// [`NodeId`](fastlive_graph::NodeId) used by all analyses.
    Block, "block"
}

entity_ref! {
    /// An SSA value: either a block parameter (the IR's φ-function form)
    /// or the result of an instruction.
    Value, "v"
}

entity_ref! {
    /// An instruction.
    Inst, "inst"
}

/// An append-only arena mapping an entity reference to its data.
///
/// # Examples
///
/// ```
/// use fastlive_ir::entities::{Block, PrimaryMap};
///
/// let mut blocks: PrimaryMap<Block, &str> = PrimaryMap::new();
/// let b0 = blocks.push("entry");
/// assert_eq!(b0.index(), 0);
/// assert_eq!(blocks[b0], "entry");
/// assert_eq!(blocks.len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrimaryMap<K, V> {
    elems: Vec<V>,
    _marker: std::marker::PhantomData<K>,
}

/// Entity keys usable with [`PrimaryMap`]. Implemented by [`Block`],
/// [`Value`] and [`Inst`]; sealed in spirit (implementing it for other
/// types is useless since only this crate creates the maps).
pub trait EntityRef: Copy {
    /// Builds the key from a raw index.
    fn from_index(i: usize) -> Self;
    /// The raw index of the key.
    fn index(self) -> usize;
}

macro_rules! impl_entity {
    ($name:ident) => {
        impl EntityRef for $name {
            fn from_index(i: usize) -> Self {
                $name::from_index(i)
            }
            fn index(self) -> usize {
                $name::index(self)
            }
        }
    };
}
impl_entity!(Block);
impl_entity!(Value);
impl_entity!(Inst);

impl<K: EntityRef, V> PrimaryMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PrimaryMap {
            elems: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Appends `value` and returns its key.
    pub fn push(&mut self, value: V) -> K {
        let k = K::from_index(self.elems.len());
        self.elems.push(value);
        k
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` if the map holds no entities.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The value for `k`, if `k` is in range.
    pub fn get(&self, k: K) -> Option<&V> {
        self.elems.get(k.index())
    }

    /// Iterates `(key, &value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.elems
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates all keys in index order.
    pub fn keys(&self) -> impl Iterator<Item = K> + use<K, V> {
        (0..self.elems.len()).map(K::from_index)
    }

    /// Iterates all values in index order.
    pub fn values(&self) -> std::slice::Iter<'_, V> {
        self.elems.iter()
    }
}

impl<K: EntityRef, V> Default for PrimaryMap<K, V> {
    fn default() -> Self {
        PrimaryMap::new()
    }
}

impl<K: EntityRef, V> std::ops::Index<K> for PrimaryMap<K, V> {
    type Output = V;
    fn index(&self, k: K) -> &V {
        &self.elems[k.index()]
    }
}

impl<K: EntityRef, V> std::ops::IndexMut<K> for PrimaryMap<K, V> {
    fn index_mut(&mut self, k: K) -> &mut V {
        &mut self.elems[k.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_refs_display_with_prefix() {
        assert_eq!(Block::from_index(3).to_string(), "block3");
        assert_eq!(Value::from_index(0).to_string(), "v0");
        assert_eq!(Inst::from_index(12).to_string(), "inst12");
        assert_eq!(format!("{:?}", Value::from_index(7)), "v7");
    }

    #[test]
    fn entity_round_trip() {
        let v = Value::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.as_u32(), 42);
    }

    #[test]
    fn primary_map_push_and_index() {
        let mut m: PrimaryMap<Inst, i32> = PrimaryMap::new();
        let a = m.push(10);
        let b = m.push(20);
        assert_eq!(m[a], 10);
        assert_eq!(m[b], 20);
        m[a] = 11;
        assert_eq!(m[a], 11);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.get(Inst::from_index(5)), None);
    }

    #[test]
    fn primary_map_iteration() {
        let mut m: PrimaryMap<Block, char> = PrimaryMap::new();
        m.push('a');
        m.push('b');
        let pairs: Vec<_> = m.iter().map(|(k, &v)| (k.index(), v)).collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b')]);
        let keys: Vec<_> = m.keys().map(|k| k.index()).collect();
        assert_eq!(keys, vec![0, 1]);
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec!['a', 'b']);
    }

    #[test]
    fn entity_ordering() {
        assert!(Value::from_index(1) < Value::from_index(2));
        assert_eq!(Block::from_index(4), Block::from_index(4));
    }
}
