//! A reference interpreter for [`Function`]s.
//!
//! The interpreter gives every function a deterministic, total semantics
//! (wrapping arithmetic, defined division by zero, an explicit fuel
//! budget for non-terminating loops). It is the ground truth for the
//! semantic-preservation tests of SSA construction and destruction: a
//! pass is correct if the function computes the same results before and
//! after, on a battery of random inputs.

use crate::entities::{Block, Value};
use crate::function::Function;
use crate::instr::{BlockCall, InstData};

/// Why evaluation stopped without returning normally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// The step budget ran out (probably an infinite loop).
    OutOfFuel,
    /// The entry block expects more arguments than were supplied.
    ArityMismatch {
        /// Parameters of the entry block.
        expected: usize,
        /// Arguments supplied to [`run`].
        got: usize,
    },
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: function takes {expected} arguments, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for Trap {}

/// The result of a completed run: returned values plus a trace summary
/// usable as a cheap semantic fingerprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Values of the executed `return`.
    pub returned: Vec<i64>,
    /// Number of instructions executed.
    pub steps: u64,
    /// Blocks visited, in order (entry first).
    pub block_trace: Vec<Block>,
}

/// Executes `func` on `args` with a step budget of `fuel`.
///
/// Block-parameter binding uses parallel-copy semantics: all branch
/// arguments are evaluated in the predecessor before any destination
/// parameter is written — the same semantics SSA destruction must
/// preserve when it lowers block arguments to copies.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when more than `fuel` instructions execute;
/// [`Trap::ArityMismatch`] when `args.len() != func.params().len()`.
///
/// # Examples
///
/// ```
/// use fastlive_ir::{interp, parse_function};
///
/// let f = parse_function(
///     "function %double { block0(v0): v1 = iadd v0, v0  return v1 }",
/// )?;
/// let out = interp::run(&f, &[21], 1_000).unwrap();
/// assert_eq!(out.returned, vec![42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(func: &Function, args: &[i64], fuel: u64) -> Result<Outcome, Trap> {
    let entry = func.entry_block();
    let params = func.block_params(entry);
    if params.len() != args.len() {
        return Err(Trap::ArityMismatch {
            expected: params.len(),
            got: args.len(),
        });
    }

    let mut env: Vec<i64> = vec![0; func.num_values()];
    let get = |env: &[i64], v: Value| env[v.index()];
    for (p, &a) in params.iter().zip(args) {
        env[p.index()] = a;
    }

    let mut block = entry;
    let mut steps = 0u64;
    let mut block_trace = vec![entry];
    loop {
        let mut next: Option<(Block, Vec<i64>)> = None;
        for &inst in func.block_insts(block) {
            steps += 1;
            if steps > fuel {
                return Err(Trap::OutOfFuel);
            }
            let bind = |call: &BlockCall, env: &[i64]| {
                (
                    call.block,
                    call.args.iter().map(|&a| get(env, a)).collect::<Vec<i64>>(),
                )
            };
            match func.inst_data(inst) {
                InstData::IntConst { imm } => {
                    let r = func.inst_result(inst).expect("const result");
                    env[r.index()] = *imm;
                }
                InstData::Unary { op, arg } => {
                    let r = func.inst_result(inst).expect("unary result");
                    env[r.index()] = op.eval(get(&env, *arg));
                }
                InstData::Binary { op, args } => {
                    let r = func.inst_result(inst).expect("binary result");
                    env[r.index()] = op.eval(get(&env, args[0]), get(&env, args[1]));
                }
                InstData::Jump { dest } => next = Some(bind(dest, &env)),
                InstData::Brif {
                    cond,
                    then_dest,
                    else_dest,
                } => {
                    let taken = get(&env, *cond) != 0;
                    next = Some(bind(if taken { then_dest } else { else_dest }, &env));
                }
                InstData::Return { args } => {
                    let returned = args.iter().map(|&a| get(&env, a)).collect();
                    return Ok(Outcome {
                        returned,
                        steps,
                        block_trace,
                    });
                }
            }
        }
        let (dest, values) =
            next.expect("every block ends in a terminator; return already handled");
        // Parallel copy: all argument values were read above, before any
        // parameter is written.
        for (p, v) in func.block_params(dest).iter().zip(values) {
            env[p.index()] = v;
        }
        block = dest;
        block_trace.push(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    #[test]
    fn straight_line_arithmetic() {
        let f = parse_function(
            "function %f { block0(v0, v1):
                v2 = imul v0, v1
                v3 = isub v2, v0
                return v3 }",
        )
        .unwrap();
        let out = run(&f, &[6, 7], 100).unwrap();
        assert_eq!(out.returned, vec![36]);
        assert_eq!(out.steps, 3);
        assert_eq!(out.block_trace.len(), 1);
    }

    #[test]
    fn loop_counts_to_n() {
        let f = parse_function(
            "function %count { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .unwrap();
        let out = run(&f, &[5], 1_000).unwrap();
        assert_eq!(out.returned, vec![5]);
        // entry + 5 loop iterations + exit
        assert_eq!(out.block_trace.len(), 7);
    }

    #[test]
    fn brif_selects_correct_arm() {
        let f = parse_function(
            "function %sel { block0(v0):
                brif v0, block1, block2
            block1:
                v1 = iconst 10
                return v1
            block2:
                v2 = iconst 20
                return v2 }",
        )
        .unwrap();
        assert_eq!(run(&f, &[1], 100).unwrap().returned, vec![10]);
        assert_eq!(run(&f, &[0], 100).unwrap().returned, vec![20]);
        assert_eq!(run(&f, &[-7], 100).unwrap().returned, vec![10]); // non-zero
    }

    #[test]
    fn parallel_copy_semantics_of_block_args() {
        // Swap two values through block parameters: block1(a, b) receives
        // (b, a). A sequential copy would clobber one of them.
        let f = parse_function(
            "function %swap { block0(v0, v1):
                jump block1(v1, v0)
            block1(v2, v3):
                return v2, v3 }",
        )
        .unwrap();
        let out = run(&f, &[1, 2], 100).unwrap();
        assert_eq!(out.returned, vec![2, 1]);
    }

    #[test]
    fn self_referential_block_args_swap_each_iteration() {
        // block1(a, b) jumps to block1(b, a) twice: after 2 iterations the
        // original order is restored.
        let f = parse_function(
            "function %swaploop { block0(v0, v1):
                v9 = iconst 0
                jump block1(v0, v1, v9)
            block1(v2, v3, v4):
                v5 = iconst 1
                v6 = iadd v4, v5
                v7 = icmp_slt v6, v5
                brif v7, block2, block3
            block2:
                return v2, v3
            block3:
                v8 = icmp_slt v6, v5
                brif v8, block2, block4
            block4:
                return v3, v2 }",
        )
        .unwrap();
        let out = run(&f, &[10, 20], 100).unwrap();
        assert_eq!(out.returned, vec![20, 10]);
    }

    #[test]
    fn out_of_fuel_on_infinite_loop() {
        let f =
            parse_function("function %spin { block0: jump block1 block1: jump block1 }").unwrap();
        assert_eq!(run(&f, &[], 50), Err(Trap::OutOfFuel));
    }

    #[test]
    fn arity_mismatch_reported() {
        let f = parse_function("function %f { block0(v0): return v0 }").unwrap();
        assert_eq!(
            run(&f, &[], 10),
            Err(Trap::ArityMismatch {
                expected: 1,
                got: 0
            })
        );
        assert!(run(&f, &[1, 2], 10).is_err());
        let msg = Trap::ArityMismatch {
            expected: 1,
            got: 0,
        }
        .to_string();
        assert!(msg.contains("takes 1"));
    }

    #[test]
    fn division_semantics_are_total() {
        let f = parse_function(
            "function %d { block0(v0, v1):
                v2 = sdiv v0, v1
                v3 = srem v0, v1
                v4 = iadd v2, v3
                return v4 }",
        )
        .unwrap();
        assert_eq!(run(&f, &[7, 0], 100).unwrap().returned, vec![7]); // 0 + 7
        assert_eq!(run(&f, &[7, 2], 100).unwrap().returned, vec![4]); // 3 + 1
        assert_eq!(
            run(&f, &[i64::MIN, -1], 100).unwrap().returned,
            vec![i64::MIN] // MIN + 0
        );
    }
}
