//! Ergonomic instruction construction: [`InsBuilder`], returned by
//! [`Function::ins`].

use crate::entities::{Block, Inst, Value};
use crate::function::Function;
use crate::instr::{BinaryOp, BlockCall, InstData, UnaryOp};

/// Appends instructions to the end of one block.
///
/// Value-producing methods return the result [`Value`]; terminators
/// return the [`Inst`]. Created by [`Function::ins`].
///
/// # Examples
///
/// ```
/// use fastlive_ir::Function;
///
/// let mut f = Function::new("max0");
/// let b0 = f.add_block();
/// let b1 = f.add_block();
/// let b2 = f.add_block();
/// let x = f.append_block_param(b0);
///
/// let zero = f.ins(b0).iconst(0);
/// let neg = f.ins(b0).icmp_slt(x, zero);
/// f.ins(b0).brif(neg, b1, vec![], b2, vec![]);
/// f.ins(b1).ret(vec![zero]);
/// f.ins(b2).ret(vec![x]);
/// ```
#[derive(Debug)]
pub struct InsBuilder<'a> {
    func: &'a mut Function,
    block: Block,
}

impl<'a> InsBuilder<'a> {
    pub(crate) fn new(func: &'a mut Function, block: Block) -> Self {
        InsBuilder { func, block }
    }

    fn value_inst(self, data: InstData) -> Value {
        let inst = self.func.append_inst(self.block, data);
        self.func
            .inst_result(inst)
            .expect("value instruction has a result")
    }

    /// `v = iconst imm`.
    pub fn iconst(self, imm: i64) -> Value {
        self.value_inst(InstData::IntConst { imm })
    }

    /// `v = <op> a` for any unary opcode.
    pub fn unary(self, op: UnaryOp, arg: Value) -> Value {
        self.value_inst(InstData::Unary { op, arg })
    }

    /// `v = copy a` — the move SSA destruction inserts.
    pub fn copy(self, arg: Value) -> Value {
        self.unary(UnaryOp::Copy, arg)
    }

    /// `v = ineg a`.
    pub fn ineg(self, arg: Value) -> Value {
        self.unary(UnaryOp::Ineg, arg)
    }

    /// `v = bnot a`.
    pub fn bnot(self, arg: Value) -> Value {
        self.unary(UnaryOp::Bnot, arg)
    }

    /// `v = <op> a, b` for any binary opcode.
    pub fn binary(self, op: BinaryOp, a: Value, b: Value) -> Value {
        self.value_inst(InstData::Binary { op, args: [a, b] })
    }

    /// `v = iadd a, b`.
    pub fn iadd(self, a: Value, b: Value) -> Value {
        self.binary(BinaryOp::Iadd, a, b)
    }

    /// `v = isub a, b`.
    pub fn isub(self, a: Value, b: Value) -> Value {
        self.binary(BinaryOp::Isub, a, b)
    }

    /// `v = imul a, b`.
    pub fn imul(self, a: Value, b: Value) -> Value {
        self.binary(BinaryOp::Imul, a, b)
    }

    /// `v = icmp_eq a, b` (1 if equal else 0).
    pub fn icmp_eq(self, a: Value, b: Value) -> Value {
        self.binary(BinaryOp::IcmpEq, a, b)
    }

    /// `v = icmp_slt a, b` (1 if `a < b` signed, else 0).
    pub fn icmp_slt(self, a: Value, b: Value) -> Value {
        self.binary(BinaryOp::IcmpSlt, a, b)
    }

    /// `jump dest(args)`.
    pub fn jump(self, dest: Block, args: Vec<Value>) -> Inst {
        self.func.append_inst(
            self.block,
            InstData::Jump {
                dest: BlockCall::with_args(dest, args),
            },
        )
    }

    /// `brif cond, then_dest(then_args), else_dest(else_args)`.
    pub fn brif(
        self,
        cond: Value,
        then_dest: Block,
        then_args: Vec<Value>,
        else_dest: Block,
        else_args: Vec<Value>,
    ) -> Inst {
        self.func.append_inst(
            self.block,
            InstData::Brif {
                cond,
                then_dest: BlockCall::with_args(then_dest, then_args),
                else_dest: BlockCall::with_args(else_dest, else_args),
            },
        )
    }

    /// `return args`.
    pub fn ret(self, args: Vec<Value>) -> Inst {
        self.func.append_inst(self.block, InstData::Return { args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_shapes_a_loop() {
        // block0(n): jump block1(0)
        // block1(i): i2 = iadd i, 1; c = icmp_slt i2, n; brif c, block1(i2), block2
        // block2: return i2  -- wait: i2 defined in block1 dominates block2.
        let mut f = Function::new("loop");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let n = f.append_block_param(b0);
        let i = f.append_block_param(b1);
        let zero = f.ins(b0).iconst(0);
        f.ins(b0).jump(b1, vec![zero]);
        let one = f.ins(b1).iconst(1);
        let i2 = f.ins(b1).iadd(i, one);
        let c = f.ins(b1).icmp_slt(i2, n);
        f.ins(b1).brif(c, b1, vec![i2], b2, vec![]);
        f.ins(b2).ret(vec![i2]);

        use fastlive_graph::Cfg as _;
        assert_eq!(f.succs(1), &[1, 2]);
        assert_eq!(f.uses(i2).len(), 3); // icmp, branch arg, return
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    fn all_value_ops_produce_results() {
        let mut f = Function::new("ops");
        let b = f.add_block();
        let x = f.append_block_param(b);
        let y = f.ins(b).iconst(2);
        let ops = [
            f.ins(b).iadd(x, y),
            f.ins(b).isub(x, y),
            f.ins(b).imul(x, y),
            f.ins(b).icmp_eq(x, y),
            f.ins(b).icmp_slt(x, y),
            f.ins(b).copy(x),
            f.ins(b).ineg(x),
            f.ins(b).bnot(x),
            f.ins(b).binary(BinaryOp::Bxor, x, y),
            f.ins(b).unary(UnaryOp::Copy, x),
        ];
        f.ins(b).ret(vec![ops[0]]);
        assert_eq!(f.num_values(), 2 + ops.len());
    }
}
