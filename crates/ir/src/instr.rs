//! Instruction data: opcodes, operands and branch targets.

use crate::entities::{Block, Value};

/// Operations with one operand.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Identity move — the instruction SSA destruction inserts.
    Copy,
    /// Two's-complement negation.
    Ineg,
    /// Bitwise complement.
    Bnot,
}

impl UnaryOp {
    /// The textual mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Copy => "copy",
            UnaryOp::Ineg => "ineg",
            UnaryOp::Bnot => "bnot",
        }
    }

    /// Evaluates the operation on a concrete value.
    pub fn eval(self, x: i64) -> i64 {
        match self {
            UnaryOp::Copy => x,
            UnaryOp::Ineg => x.wrapping_neg(),
            UnaryOp::Bnot => !x,
        }
    }

    /// All unary opcodes (used by the workload generator).
    pub const ALL: [UnaryOp; 3] = [UnaryOp::Copy, UnaryOp::Ineg, UnaryOp::Bnot];
}

/// Operations with two operands. Comparison results are `1` or `0`.
///
/// All operations are *total*: wrapping arithmetic, and division or
/// remainder by zero yields 0 (`i64::MIN / -1` wraps). This keeps the
/// interpreter trap-free so that randomly generated programs always have
/// defined semantics — important for the semantic-preservation tests of
/// SSA construction/destruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Wrapping addition.
    Iadd,
    /// Wrapping subtraction.
    Isub,
    /// Wrapping multiplication.
    Imul,
    /// Signed division; `x / 0 = 0`, `MIN / -1 = MIN`.
    Sdiv,
    /// Signed remainder; `x % 0 = x`, `MIN % -1 = 0`.
    Srem,
    /// Bitwise and.
    Band,
    /// Bitwise or.
    Bor,
    /// Bitwise xor.
    Bxor,
    /// Equality (0/1).
    IcmpEq,
    /// Inequality (0/1).
    IcmpNe,
    /// Signed less-than (0/1).
    IcmpSlt,
    /// Signed less-or-equal (0/1).
    IcmpSle,
}

impl BinaryOp {
    /// The textual mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinaryOp::Iadd => "iadd",
            BinaryOp::Isub => "isub",
            BinaryOp::Imul => "imul",
            BinaryOp::Sdiv => "sdiv",
            BinaryOp::Srem => "srem",
            BinaryOp::Band => "band",
            BinaryOp::Bor => "bor",
            BinaryOp::Bxor => "bxor",
            BinaryOp::IcmpEq => "icmp_eq",
            BinaryOp::IcmpNe => "icmp_ne",
            BinaryOp::IcmpSlt => "icmp_slt",
            BinaryOp::IcmpSle => "icmp_sle",
        }
    }

    /// Evaluates the operation on concrete values (total semantics).
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinaryOp::Iadd => a.wrapping_add(b),
            BinaryOp::Isub => a.wrapping_sub(b),
            BinaryOp::Imul => a.wrapping_mul(b),
            BinaryOp::Sdiv => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinaryOp::Srem => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinaryOp::Band => a & b,
            BinaryOp::Bor => a | b,
            BinaryOp::Bxor => a ^ b,
            BinaryOp::IcmpEq => (a == b) as i64,
            BinaryOp::IcmpNe => (a != b) as i64,
            BinaryOp::IcmpSlt => (a < b) as i64,
            BinaryOp::IcmpSle => (a <= b) as i64,
        }
    }

    /// All binary opcodes (used by the workload generator).
    pub const ALL: [BinaryOp; 12] = [
        BinaryOp::Iadd,
        BinaryOp::Isub,
        BinaryOp::Imul,
        BinaryOp::Sdiv,
        BinaryOp::Srem,
        BinaryOp::Band,
        BinaryOp::Bor,
        BinaryOp::Bxor,
        BinaryOp::IcmpEq,
        BinaryOp::IcmpNe,
        BinaryOp::IcmpSlt,
        BinaryOp::IcmpSle,
    ];
}

/// A branch target: destination block plus the arguments passed to its
/// block parameters.
///
/// Block-parameter arguments are this IR's φ-functions: passing `x` to
/// `blockN(p)` on the edge from block `B` *is* the φ-use of `x` at `B`
/// in the sense of the paper's Definition 1 ("v is the i-th predecessor
/// of some node containing a φ-function whose i-th argument is x").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BlockCall {
    /// Destination block.
    pub block: Block,
    /// Arguments matching the destination's block parameters.
    pub args: Vec<Value>,
}

impl BlockCall {
    /// A target with no arguments.
    pub fn no_args(block: Block) -> Self {
        BlockCall {
            block,
            args: Vec::new(),
        }
    }

    /// A target with arguments.
    pub fn with_args(block: Block, args: Vec<Value>) -> Self {
        BlockCall { block, args }
    }
}

/// The payload of an instruction.
///
/// Exactly the last instruction of every block must be a *terminator*
/// ([`Jump`](InstData::Jump), [`Brif`](InstData::Brif) or
/// [`Return`](InstData::Return)); all other instructions produce one
/// [`Value`] result.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum InstData {
    /// `v = iconst IMM` — integer constant.
    IntConst {
        /// The constant.
        imm: i64,
    },
    /// `v = <op> a` — unary operation.
    Unary {
        /// Opcode.
        op: UnaryOp,
        /// Operand.
        arg: Value,
    },
    /// `v = <op> a, b` — binary operation.
    Binary {
        /// Opcode.
        op: BinaryOp,
        /// Operands.
        args: [Value; 2],
    },
    /// `jump blockN(args)` — unconditional branch.
    Jump {
        /// Destination.
        dest: BlockCall,
    },
    /// `brif c, blockT(args), blockF(args)` — conditional branch: taken
    /// if `c != 0`.
    Brif {
        /// Condition value.
        cond: Value,
        /// Target when the condition is non-zero.
        then_dest: BlockCall,
        /// Target when the condition is zero.
        else_dest: BlockCall,
    },
    /// `return args` — leave the function.
    Return {
        /// Returned values.
        args: Vec<Value>,
    },
}

impl InstData {
    /// `true` for jump/brif/return.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstData::Jump { .. } | InstData::Brif { .. } | InstData::Return { .. }
        )
    }

    /// `true` if the instruction produces a result value.
    pub fn has_result(&self) -> bool {
        !self.is_terminator()
    }

    /// `true` for the `copy` instruction.
    pub fn is_copy(&self) -> bool {
        matches!(
            self,
            InstData::Unary {
                op: UnaryOp::Copy,
                ..
            }
        )
    }

    /// Calls `f` on every value operand, including branch arguments, in
    /// textual order.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            InstData::IntConst { .. } => {}
            InstData::Unary { arg, .. } => f(*arg),
            InstData::Binary { args, .. } => {
                f(args[0]);
                f(args[1]);
            }
            InstData::Jump { dest } => dest.args.iter().copied().for_each(f),
            InstData::Brif {
                cond,
                then_dest,
                else_dest,
            } => {
                f(*cond);
                then_dest.args.iter().copied().for_each(&mut f);
                else_dest.args.iter().copied().for_each(&mut f);
            }
            InstData::Return { args } => args.iter().copied().for_each(f),
        }
    }

    /// Rewrites every operand through `f` (used by renaming passes).
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            InstData::IntConst { .. } => {}
            InstData::Unary { arg, .. } => *arg = f(*arg),
            InstData::Binary { args, .. } => {
                args[0] = f(args[0]);
                args[1] = f(args[1]);
            }
            InstData::Jump { dest } => {
                for a in &mut dest.args {
                    *a = f(*a);
                }
            }
            InstData::Brif {
                cond,
                then_dest,
                else_dest,
            } => {
                *cond = f(*cond);
                for a in &mut then_dest.args {
                    *a = f(*a);
                }
                for a in &mut else_dest.args {
                    *a = f(*a);
                }
            }
            InstData::Return { args } => {
                for a in args {
                    *a = f(*a);
                }
            }
        }
    }

    /// The branch targets of a terminator (empty for `return` and
    /// non-terminators).
    pub fn branch_targets(&self) -> Vec<&BlockCall> {
        match self {
            InstData::Jump { dest } => vec![dest],
            InstData::Brif {
                then_dest,
                else_dest,
                ..
            } => vec![then_dest, else_dest],
            _ => Vec::new(),
        }
    }

    /// Mutable access to the branch targets.
    pub fn branch_targets_mut(&mut self) -> Vec<&mut BlockCall> {
        match self {
            InstData::Jump { dest } => vec![dest],
            InstData::Brif {
                then_dest,
                else_dest,
                ..
            } => vec![then_dest, else_dest],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Value {
        Value::from_index(i)
    }

    #[test]
    fn terminator_classification() {
        assert!(InstData::Jump {
            dest: BlockCall::no_args(Block::from_index(0))
        }
        .is_terminator());
        assert!(InstData::Return { args: vec![] }.is_terminator());
        assert!(!InstData::IntConst { imm: 3 }.is_terminator());
        assert!(InstData::IntConst { imm: 3 }.has_result());
        assert!(InstData::Unary {
            op: UnaryOp::Copy,
            arg: v(0)
        }
        .is_copy());
        assert!(!InstData::Unary {
            op: UnaryOp::Ineg,
            arg: v(0)
        }
        .is_copy());
    }

    #[test]
    fn operand_iteration_covers_branch_args() {
        let data = InstData::Brif {
            cond: v(0),
            then_dest: BlockCall::with_args(Block::from_index(1), vec![v(1), v(2)]),
            else_dest: BlockCall::with_args(Block::from_index(2), vec![v(3)]),
        };
        let mut ops = Vec::new();
        data.for_each_operand(|x| ops.push(x.index()));
        assert_eq!(ops, vec![0, 1, 2, 3]);
    }

    #[test]
    fn map_operands_rewrites_everything() {
        let mut data = InstData::Binary {
            op: BinaryOp::Iadd,
            args: [v(0), v(1)],
        };
        data.map_operands(|x| Value::from_index(x.index() + 10));
        let mut ops = Vec::new();
        data.for_each_operand(|x| ops.push(x.index()));
        assert_eq!(ops, vec![10, 11]);
    }

    #[test]
    fn total_arithmetic_semantics() {
        assert_eq!(BinaryOp::Iadd.eval(i64::MAX, 1), i64::MIN); // wraps
        assert_eq!(BinaryOp::Sdiv.eval(5, 0), 0);
        assert_eq!(BinaryOp::Sdiv.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(BinaryOp::Srem.eval(5, 0), 5);
        assert_eq!(BinaryOp::Srem.eval(i64::MIN, -1), 0);
        assert_eq!(BinaryOp::IcmpSlt.eval(-1, 0), 1);
        assert_eq!(BinaryOp::IcmpSle.eval(1, 0), 0);
        assert_eq!(UnaryOp::Ineg.eval(i64::MIN), i64::MIN);
        assert_eq!(UnaryOp::Bnot.eval(0), -1);
        assert_eq!(UnaryOp::Copy.eval(7), 7);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = BinaryOp::ALL.iter().map(|o| o.mnemonic()).collect();
        names.extend(UnaryOp::ALL.iter().map(|o| o.mnemonic()));
        names.push("iconst");
        names.push("jump");
        names.push("brif");
        names.push("return");
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate mnemonic");
    }

    #[test]
    fn branch_targets_access() {
        let mut data = InstData::Jump {
            dest: BlockCall::no_args(Block::from_index(3)),
        };
        assert_eq!(data.branch_targets().len(), 1);
        data.branch_targets_mut()[0].args.push(v(9));
        let mut ops = Vec::new();
        data.for_each_operand(|x| ops.push(x));
        assert_eq!(ops, vec![v(9)]);
        assert!(InstData::Return { args: vec![] }
            .branch_targets()
            .is_empty());
    }
}
