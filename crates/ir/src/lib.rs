//! A Cranelift-style SSA intermediate representation for the `fastlive`
//! liveness library.
//!
//! This crate provides the program representation the paper assumes
//! (§2.2): a control-flow graph of basic blocks holding instructions in
//! **strict SSA form**, with φ-functions and maintained def-use chains.
//! Design choices:
//!
//! * **Block parameters instead of φ-instructions.** A φ-function
//!   `z ← φ(x, y)` is expressed as a parameter `z` of the join block,
//!   with `x`/`y` passed as branch arguments by the predecessors. This
//!   realises Definition 1 of the paper *structurally*: the i-th φ-use
//!   happens at the i-th predecessor, because that is where the branch
//!   instruction carrying the argument lives.
//! * **Def-use chains are maintained by construction** — every mutator
//!   updates them, so the liveness checker's query-time walk over
//!   `uses(a)` is always available, and updating them "incurs virtually
//!   no costs" exactly as §2 argues.
//! * **One integer type.** Liveness is type-agnostic; a single `i64`
//!   type keeps the interpreter and generators simple without losing any
//!   generality relevant to the paper.
//!
//! The crate also ships a [parser](parse_function) and printer for a
//! stable textual format, a reference [interpreter](interp) (the ground
//! truth for the SSA construction/destruction semantics tests), a
//! structural [verifier](verify_structure), and
//! [critical-edge splitting](split_critical_edges).
//!
//! # Examples
//!
//! ```
//! use fastlive_graph::Cfg as _;
//! use fastlive_ir::{interp, parse_function};
//!
//! let f = parse_function(
//!     "function %abs { block0(v0):
//!          v1 = iconst 0
//!          v2 = icmp_slt v0, v1
//!          brif v2, block1, block2
//!      block1:
//!          v3 = ineg v0
//!          return v3
//!      block2:
//!          return v0 }",
//! )?;
//! assert_eq!(f.num_blocks(), 3);
//! assert_eq!(f.succs(0), &[1, 2]); // the IR is a Cfg
//! assert_eq!(interp::run(&f, &[-5], 100)?.returned, vec![5]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod entities;
mod function;
pub mod instr;
pub mod interp;
mod module;
mod parser;
mod point;
mod printer;
mod transform;
mod verify;

pub use entities::{Block, Inst, Value};
pub use function::{Function, ValueDef};
pub use instr::{BinaryOp, BlockCall, InstData, UnaryOp};
pub use module::{FuncId, Module};
pub use parser::{parse_function, parse_module, ParseError};
pub use point::ProgramPoint;
pub use transform::{remove_dead_block_params, split_critical_edges};
pub use verify::{verify_structure, VerifyError};
