//! The iterative nullness / definite-initialization referee.
//!
//! A deliberately naive dense solver, written independently of
//! `fastlive_core::NullnessArtifact`'s sparse def-use propagation: it
//! re-evaluates *every* reachable block in index order, round after
//! round, until nothing changes. Reachability comes from a plain BFS
//! (no dominator tree anywhere), and definite initialization is the
//! textbook must-analysis — intersection of predecessor out-sets —
//! rather than a dominance query. Because both solvers compute least
//! (respectively greatest) fixpoints of the same monotone equations,
//! their answers must agree bit-for-bit; the differential suites hold
//! the facade's Direct and Session backends to this referee.

use fastlive_bitset::DenseBitSet;
use fastlive_core::Nullness;
use fastlive_graph::Cfg;
use fastlive_ir::{BinaryOp, Block, Function, InstData, UnaryOp, Value};

/// Four-point working lattice; `Unknown` is the dense solver's bottom
/// ("no evidence yet"), reported as [`Nullness::Maybe`] once solved.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum V {
    Unknown,
    Zero,
    NonZero,
    Any,
}

impl V {
    fn merge(self, other: V) -> V {
        match (self, other) {
            (V::Unknown, x) | (x, V::Unknown) => x,
            (a, b) if a == b => a,
            _ => V::Any,
        }
    }

    fn public(self) -> Nullness {
        match self {
            V::Zero => Nullness::Null,
            V::NonZero => Nullness::NonNull,
            V::Unknown | V::Any => Nullness::Maybe,
        }
    }
}

/// The solved facts of one function: per-value nullness plus per-block
/// "definitely initialized at entry" sets.
#[derive(Clone, Debug)]
pub struct IterativeNullness {
    facts: Vec<Nullness>,
    init_in: Vec<DenseBitSet>,
    reachable: Vec<bool>,
    rounds: u32,
}

impl IterativeNullness {
    /// Solves both analyses for `func` by chaotic iteration.
    pub fn compute(func: &Function) -> Self {
        let nb = func.num_blocks();
        let nv = func.num_values();

        // Reachability by BFS over the block graph.
        let mut reachable = vec![false; nb];
        let mut queue = vec![func.entry_block().as_u32()];
        reachable[func.entry_block().index()] = true;
        while let Some(b) = queue.pop() {
            for &s in func.succs(b) {
                if !reachable[s as usize] {
                    reachable[s as usize] = true;
                    queue.push(s);
                }
            }
        }

        let mut vals = vec![V::Unknown; nv];
        let mut rounds = 0u32;

        // Nullness: full re-evaluation sweeps until a fixpoint.
        loop {
            rounds += 1;
            let mut changed = false;
            for bi in 0..nb {
                if !reachable[bi] {
                    continue;
                }
                let b = Block::from_index(bi);
                for (pi, &p) in func.block_params(b).iter().enumerate() {
                    let next = if b == func.entry_block() {
                        V::Any
                    } else {
                        incoming(func, &reachable, &vals, b, pi)
                    };
                    if next != vals[p.index()] {
                        vals[p.index()] = next;
                        changed = true;
                    }
                }
                for &inst in func.block_insts(b) {
                    let Some(r) = func.inst_result(inst) else {
                        continue;
                    };
                    let next = eval_inst(func.inst_data(inst), &vals);
                    if next != vals[r.index()] {
                        vals[r.index()] = next;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Definite initialization: greatest fixpoint of
        //   In(entry) = params(entry)
        //   In(b)     = params(b) ∪ ⋂ { Out(p) : p reachable pred }
        //   Out(b)    = In(b) ∪ { instruction results of b }
        // over reachable blocks, starting from the full set.
        let full = DenseBitSet::from_elems(nv, 0..nv as u32);
        let mut init_in: Vec<DenseBitSet> = (0..nb)
            .map(|bi| {
                if !reachable[bi] {
                    DenseBitSet::new(nv)
                } else if bi == func.entry_block().index() {
                    DenseBitSet::from_elems(nv, func.params().iter().map(|v| v.index() as u32))
                } else {
                    full.clone()
                }
            })
            .collect();
        let mut init_out: Vec<DenseBitSet> = init_in
            .iter()
            .enumerate()
            .map(|(bi, set)| {
                let mut out = set.clone();
                if reachable[bi] {
                    for &inst in func.block_insts(Block::from_index(bi)) {
                        if let Some(r) = func.inst_result(inst) {
                            out.insert(r.index() as u32);
                        }
                    }
                }
                out
            })
            .collect();

        loop {
            rounds += 1;
            let mut changed = false;
            for bi in 0..nb {
                if !reachable[bi] || bi == func.entry_block().index() {
                    continue;
                }
                let b = Block::from_index(bi);
                let mut inset = full.clone();
                let mut have_pred = false;
                for &p in func.preds(b.as_u32()) {
                    if reachable[p as usize] {
                        inset.intersect_with(&init_out[p as usize]);
                        have_pred = true;
                    }
                }
                if !have_pred {
                    inset = DenseBitSet::new(nv);
                }
                for &v in func.block_params(b) {
                    inset.insert(v.index() as u32);
                }
                if inset != init_in[bi] {
                    init_in[bi] = inset.clone();
                    for &inst in func.block_insts(b) {
                        if let Some(r) = func.inst_result(inst) {
                            inset.insert(r.index() as u32);
                        }
                    }
                    init_out[bi] = inset;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        IterativeNullness {
            facts: vals.into_iter().map(V::public).collect(),
            init_in,
            reachable,
            rounds,
        }
    }

    /// The three-valued verdict for `v`.
    pub fn fact(&self, v: Value) -> Nullness {
        self.facts[v.index()]
    }

    /// `true` when `v`'s definition has executed on every path from
    /// entry to the entry of `q`.
    pub fn definitely_initialized_at_entry(&self, v: Value, q: Block) -> bool {
        self.reachable[q.index()] && self.init_in[q.index()].contains(v.index() as u32)
    }

    /// Number of full sweeps both fixpoints took (a test diagnostic).
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

/// Joins the facts of every branch argument feeding parameter `pi` of
/// block `b` from reachable predecessors.
fn incoming(func: &Function, reachable: &[bool], vals: &[V], b: Block, pi: usize) -> V {
    let mut acc = V::Unknown;
    for &p in func.preds(b.as_u32()) {
        if !reachable[p as usize] {
            continue;
        }
        let pb = Block::from_index(p as usize);
        let Some(term) = func.terminator(pb) else {
            continue;
        };
        for call in func.inst_data(term).branch_targets() {
            if call.block == b {
                acc = acc.merge(vals[call.args[pi].index()]);
            }
        }
    }
    acc
}

/// The dense solver's transfer function — organized as a value-range
/// case analysis rather than the core solver's per-op tables, but
/// encoding the same total wrapping semantics ([`BinaryOp::eval`]):
/// `sdiv` by zero is 0, `srem` by zero is the dividend, products and
/// sums wrap.
fn eval_inst(data: &InstData, vals: &[V]) -> V {
    match data {
        InstData::IntConst { imm } => {
            if *imm == 0 {
                V::Zero
            } else {
                V::NonZero
            }
        }
        InstData::Unary { op, arg } => {
            let a = vals[arg.index()];
            match (op, a) {
                (_, V::Unknown) => V::Unknown,
                (UnaryOp::Copy | UnaryOp::Ineg, x) => x,
                (UnaryOp::Bnot, V::Zero) => V::NonZero,
                (UnaryOp::Bnot, _) => V::Any,
            }
        }
        InstData::Binary { op, args } => {
            let (a, b) = (vals[args[0].index()], vals[args[1].index()]);
            let same = args[0] == args[1];
            // Reflexive comparisons are compile-time constants whatever
            // the operand holds.
            if same {
                match op {
                    BinaryOp::IcmpEq | BinaryOp::IcmpSle => return V::NonZero,
                    BinaryOp::IcmpNe | BinaryOp::IcmpSlt => return V::Zero,
                    _ => {}
                }
            }
            if a == V::Unknown || b == V::Unknown {
                return V::Unknown;
            }
            let both_zero = a == V::Zero && b == V::Zero;
            let one_zero = (a == V::Zero) ^ (b == V::Zero);
            match op {
                BinaryOp::Iadd | BinaryOp::Isub => {
                    if both_zero {
                        V::Zero
                    } else if one_zero && (a == V::NonZero || b == V::NonZero) {
                        V::NonZero
                    } else {
                        V::Any
                    }
                }
                BinaryOp::Imul | BinaryOp::Sdiv | BinaryOp::Band => {
                    if a == V::Zero || b == V::Zero {
                        V::Zero
                    } else {
                        V::Any
                    }
                }
                BinaryOp::Srem => {
                    if a == V::Zero {
                        V::Zero
                    } else if b == V::Zero {
                        a
                    } else {
                        V::Any
                    }
                }
                BinaryOp::Bor => {
                    if a == V::NonZero || b == V::NonZero {
                        V::NonZero
                    } else if a == V::Zero {
                        b
                    } else if b == V::Zero {
                        a
                    } else {
                        V::Any
                    }
                }
                BinaryOp::Bxor => {
                    if a == V::Zero {
                        b
                    } else if b == V::Zero {
                        a
                    } else {
                        V::Any
                    }
                }
                BinaryOp::IcmpEq => {
                    if both_zero {
                        V::NonZero
                    } else if one_zero && (a == V::NonZero || b == V::NonZero) {
                        V::Zero
                    } else {
                        V::Any
                    }
                }
                BinaryOp::IcmpNe => {
                    if both_zero {
                        V::Zero
                    } else if one_zero && (a == V::NonZero || b == V::NonZero) {
                        V::NonZero
                    } else {
                        V::Any
                    }
                }
                BinaryOp::IcmpSlt => {
                    if both_zero {
                        V::Zero
                    } else {
                        V::Any
                    }
                }
                BinaryOp::IcmpSle => {
                    if both_zero {
                        V::NonZero
                    } else {
                        V::Any
                    }
                }
            }
        }
        InstData::Jump { .. } | InstData::Brif { .. } | InstData::Return { .. } => V::Any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_core::NullnessArtifact;
    use fastlive_workload::{generate_module, ModuleParams};

    /// The property everything else rests on: dense referee == sparse
    /// solver, for every value and every (value, block) init query, on
    /// generated workloads.
    #[test]
    fn agrees_with_the_sparse_solver_on_generated_modules() {
        for seed in 0..12 {
            let module = generate_module(
                "nl",
                ModuleParams {
                    functions: 3,
                    min_blocks: 3,
                    max_blocks: 18,
                    ..ModuleParams::default()
                },
                seed,
            );
            for f in module.functions() {
                let dense = IterativeNullness::compute(f);
                let art = NullnessArtifact::compute(f);
                let sparse = art.solve(f);
                for v in f.values() {
                    assert_eq!(
                        dense.fact(v),
                        sparse.of(v),
                        "nullness divergence on seed {seed}, {} {v}",
                        f.name
                    );
                    for b in f.blocks() {
                        assert_eq!(
                            dense.definitely_initialized_at_entry(v, b),
                            art.definitely_initialized_at_entry(f, v, b),
                            "init divergence on seed {seed}, {} {v} at {b}",
                            f.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn loop_header_defs_are_not_initialized_at_their_own_entry() {
        // h defines s inside the loop and passes it around the back
        // edge: s is in Out of the back-edge predecessor, but the
        // first entry into h has not executed it — the intersection
        // must exclude it.
        let mut f = fastlive_ir::Function::new("t");
        let b0 = f.add_block();
        let p = f.append_block_param(b0);
        let bh = f.add_block();
        let i = f.append_block_param(bh);
        let bx = f.add_block();
        let one = f.ins(b0).iconst(1);
        f.ins(b0).jump(bh, vec![one]);
        let s = f.ins(bh).iadd(i, one);
        f.ins(bh).brif(p, bh, vec![s], bx, vec![]);
        f.ins(bx).ret(vec![s]);

        let dense = IterativeNullness::compute(&f);
        assert!(!dense.definitely_initialized_at_entry(s, bh));
        assert!(dense.definitely_initialized_at_entry(i, bh));
        assert!(dense.definitely_initialized_at_entry(s, bx));

        let art = NullnessArtifact::compute(&f);
        assert!(!art.definitely_initialized_at_entry(&f, s, bh));
        assert!(art.definitely_initialized_at_entry(&f, i, bh));
        assert!(art.definitely_initialized_at_entry(&f, s, bx));
    }
}
