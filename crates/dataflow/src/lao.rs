use fastlive_bitset::{SortedSet, SparseSet};
use fastlive_cfg::DfsTree;
use fastlive_graph::Cfg as _;
use fastlive_ir::{Block, Function, Value};

use crate::universe::VarUniverse;

/// A faithful reimplementation of the liveness analysis of the LAO code
/// generator, as described in §6.2 of the paper — the "Native" column
/// of Table 2.
///
/// The distinguishing features, quoting the paper:
///
/// 1. *"the universe of the variables to consider is collected in a
///    table prior to liveness analysis ... variables are assigned dense
///    indices"* — [`VarUniverse`];
/// 2. *"the local liveness analysis is performed using the sparse sets
///    of Briggs & Torczon"* — per-block `gen`/`kill` computed with a
///    [`SparseSet`] scratch;
/// 3. *"the global liveness analysis relies on sets represented as
///    sorted dense arrays ... testing set membership only requires a
///    binary search"* — per-block live-in/live-out stored as
///    [`SortedSet`]s, queried via binary search;
/// 4. the solver is *"a classic iterative solver whose worklist is a
///    stack"*;
/// 5. for SSA destruction, *"non-φ-related variables [are ignored]
///    completely"* — pass [`VarUniverse::phi_related`].
///
/// # Examples
///
/// ```
/// use fastlive_dataflow::{LaoLiveness, VarUniverse};
/// use fastlive_ir::parse_function;
///
/// let f = parse_function(
///     "function %f { block0(v0): jump block1  block1: return v0 }",
/// )?;
/// let live = LaoLiveness::compute(&f, &VarUniverse::all(&f));
/// let v0 = f.params()[0];
/// assert!(live.is_live_in(v0, f.block_by_index(1)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct LaoLiveness {
    live_in: Vec<SortedSet>,
    live_out: Vec<SortedSet>,
    universe: VarUniverse,
    /// Block relaxations until the fixpoint.
    pub relaxations: usize,
    /// Total set insertions performed — §6.2 observes LAO's runtime
    /// "is basically bounded by the number of set insertions".
    pub set_insertions: usize,
}

impl LaoLiveness {
    /// Runs the solver over the given universe.
    pub fn compute(func: &Function, universe: &VarUniverse) -> Self {
        let n_blocks = func.num_blocks();
        let n_vars = universe.len();
        let mut set_insertions = 0usize;

        // Local analysis with a Briggs–Torczon sparse set tracking the
        // variables defined so far in the block.
        let mut gen: Vec<SortedSet> = Vec::with_capacity(n_blocks);
        let mut kill: Vec<SortedSet> = Vec::with_capacity(n_blocks);
        let mut defined = SparseSet::new(n_vars);
        let mut upward = SparseSet::new(n_vars);
        for b in func.blocks() {
            defined.clear();
            upward.clear();
            for &p in func.block_params(b) {
                if let Some(i) = universe.index_of(p) {
                    defined.insert(i);
                }
            }
            for &inst in func.block_insts(b) {
                func.inst_data(inst).for_each_operand(|v| {
                    if let Some(i) = universe.index_of(v) {
                        if !defined.contains(i) {
                            upward.insert(i);
                        }
                    }
                });
                if let Some(r) = func.inst_result(inst) {
                    if let Some(i) = universe.index_of(r) {
                        defined.insert(i);
                    }
                }
            }
            gen.push(SortedSet::from_unsorted(upward.iter().collect()));
            kill.push(SortedSet::from_unsorted(defined.iter().collect()));
        }

        let mut live_in: Vec<SortedSet> = vec![SortedSet::new(); n_blocks];
        let mut live_out: Vec<SortedSet> = vec![SortedSet::new(); n_blocks];

        // Global fixpoint: stack worklist, sorted-array sets.
        let dfs = DfsTree::compute(func);
        let mut stack: Vec<u32> = dfs.reverse_postorder().collect();
        let mut on_stack = vec![false; n_blocks];
        for &b in &stack {
            on_stack[b as usize] = true;
        }
        let mut relaxations = 0usize;
        let mut scratch = SparseSet::new(n_vars);
        while let Some(b) = stack.pop() {
            on_stack[b as usize] = false;
            relaxations += 1;
            scratch.clear();
            for &s in func.succs(b) {
                for i in live_in[s as usize].iter() {
                    if scratch.insert(i) {
                        set_insertions += 1;
                    }
                }
            }
            let out = SortedSet::from_unsorted(scratch.iter().collect());
            // in = gen ∪ (out \ kill)
            let mut inn = gen[b as usize].clone();
            for i in out.iter() {
                if !kill[b as usize].contains(i) && inn.insert(i) {
                    set_insertions += 1;
                }
            }
            live_out[b as usize] = out;
            if inn != live_in[b as usize] {
                live_in[b as usize] = inn;
                for &p in func.preds(b) {
                    if !on_stack[p as usize] {
                        on_stack[p as usize] = true;
                        stack.push(p);
                    }
                }
            }
        }

        LaoLiveness {
            live_in,
            live_out,
            universe: universe.clone(),
            relaxations,
            set_insertions,
        }
    }

    /// Binary-search membership query (the "Native" query of Table 2).
    /// Untracked variables report `false`.
    pub fn is_live_in(&self, v: Value, b: Block) -> bool {
        self.universe
            .index_of(v)
            .is_some_and(|i| self.live_in[b.index()].contains(i))
    }

    /// Binary-search membership in the live-out array.
    pub fn is_live_out(&self, v: Value, b: Block) -> bool {
        self.universe
            .index_of(v)
            .is_some_and(|i| self.live_out[b.index()].contains(i))
    }

    /// The live-in set of `b` as values.
    pub fn live_in_set(&self, b: Block) -> Vec<Value> {
        self.live_in[b.index()]
            .iter()
            .map(|i| self.universe.value_at(i))
            .collect()
    }

    /// The live-out set of `b` as values.
    pub fn live_out_set(&self, b: Block) -> Vec<Value> {
        self.live_out[b.index()]
            .iter()
            .map(|i| self.universe.value_at(i))
            .collect()
    }

    /// Average live-in cardinality (the §6.2 "fill ratio").
    pub fn average_fill(&self) -> f64 {
        if self.live_in.is_empty() {
            return 0.0;
        }
        let total: usize = self.live_in.iter().map(SortedSet::len).sum();
        total as f64 / self.live_in.len() as f64
    }

    /// Heap bytes of the stored live-in/live-out arrays, for the §6.1
    /// memory break-even comparison.
    pub fn set_heap_bytes(&self) -> usize {
        self.live_in
            .iter()
            .chain(&self.live_out)
            .map(SortedSet::heap_bytes)
            .sum()
    }

    /// Registers that a variable with universe index `i` became live-in
    /// at `b` (and live-out at the given predecessors): the incremental
    /// patch-up Sreedhar-style passes perform when they insert copies.
    /// This is what "keeping liveness up to date" costs with set-based
    /// liveness — the cost the paper's checker avoids entirely.
    pub fn add_live_in(&mut self, v: Value, b: Block, func: &Function) {
        let Some(i) = self.universe.index_of(v) else {
            return;
        };
        if self.live_in[b.index()].insert(i) {
            self.set_insertions += 1;
            for &p in func.preds(b.as_u32()) {
                if self.live_out[p as usize].insert(i) {
                    self.set_insertions += 1;
                }
            }
        }
    }

    /// The universe the solver ran over.
    pub fn universe(&self) -> &VarUniverse {
        &self.universe
    }
}

/// The LAO-style baseline behind the workspace-wide query interface:
/// binary-search membership for block queries, the default
/// decomposition for point queries. Values outside the universe (e.g.
/// non-φ-related values under [`VarUniverse::phi_related`]) report
/// dead; the destruction pass wraps this engine in a patching adapter
/// (`fastlive-destruct`'s `NativeEngine`) precisely because of that.
impl fastlive_core::LivenessProvider for LaoLiveness {
    fn live_in(&mut self, _func: &Function, v: Value, b: Block) -> bool {
        LaoLiveness::is_live_in(self, v, b)
    }
    fn live_out(&mut self, _func: &Function, v: Value, b: Block) -> bool {
        LaoLiveness::is_live_out(self, v, b)
    }
    fn name(&self) -> &'static str {
        "native (LAO-style)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterativeLiveness;
    use fastlive_ir::parse_function;

    fn funcs() -> Vec<Function> {
        [
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
            "function %d { block0(v0, v1):
                brif v0, block1, block2
            block1:
                v2 = ineg v1
                jump block3(v2)
            block2:
                v3 = bnot v1
                jump block3(v3)
            block3(v4):
                return v4 }",
            "function %straight { block0(v0):
                v1 = iadd v0, v0
                v2 = imul v1, v0
                return v2 }",
        ]
        .iter()
        .map(|s| parse_function(s).unwrap())
        .collect()
    }

    #[test]
    fn agrees_with_bitvector_solver_on_all_universes() {
        for f in funcs() {
            for universe in [VarUniverse::all(&f), VarUniverse::phi_related(&f)] {
                let lao = LaoLiveness::compute(&f, &universe);
                let bits = IterativeLiveness::compute(&f, &universe);
                for v in f.values() {
                    for b in f.blocks() {
                        assert_eq!(
                            lao.is_live_in(v, b),
                            bits.is_live_in(v, b),
                            "{}: live-in({v}, {b})",
                            f.name
                        );
                        assert_eq!(
                            lao.is_live_out(v, b),
                            bits.is_live_out(v, b),
                            "{}: live-out({v}, {b})",
                            f.name
                        );
                    }
                }
                assert!((lao.average_fill() - bits.average_fill()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sorted_sets_are_queried_by_binary_search() {
        let f = &funcs()[0];
        let lao = LaoLiveness::compute(f, &VarUniverse::all(f));
        let b1 = f.block_by_index(1);
        let set = lao.live_in_set(b1);
        assert!(set.contains(&f.params()[0]));
        assert!(lao.set_insertions > 0);
        assert!(lao.set_heap_bytes() > 0);
    }

    #[test]
    fn incremental_patch_up() {
        let f = &funcs()[0];
        let mut lao = LaoLiveness::compute(f, &VarUniverse::all(f));
        let v0 = f.params()[0];
        let b2 = f.block_by_index(2);
        assert!(!lao.is_live_in(v0, b2));
        lao.add_live_in(v0, b2, f);
        assert!(lao.is_live_in(v0, b2));
        let b1 = f.block_by_index(1);
        assert!(lao.is_live_out(v0, b1)); // predecessor updated
    }
}
