use fastlive_bitset::DenseBitSet;
use fastlive_graph::Cfg as _;
use fastlive_ir::{Block, Function, Value};

use crate::universe::VarUniverse;

/// Per-variable SSA liveness by backward marking — the algorithm the
/// paper's related work (§7) attributes to Appel & Palsberg's textbook:
///
/// > "It then uses the def-use chain to search all blocks lying on
/// > paths from the variable's definition to a use. The variable must
/// > be marked live at each of these blocks. Since it uses the def-use
/// > chain, there is no need to traverse the instructions inside a
/// > basic block. Hence, the algorithm's runtime corresponds exactly to
/// > the number of set insertion operations."
///
/// For each variable: start from every use block (Definition-1
/// attribution, so φ-uses start at predecessors), mark it live-in, and
/// walk predecessors — marking live-out on the way — until the defining
/// block stops the walk. As §7 notes, the *results* are ordinary live
/// sets and are invalidated by program edits just like data-flow
/// results; the value of this engine here is as an independently-derived
/// cross-check and a per-variable cost model.
///
/// # Examples
///
/// ```
/// use fastlive_dataflow::{AppelLiveness, VarUniverse};
/// use fastlive_ir::parse_function;
///
/// let f = parse_function(
///     "function %f { block0(v0): jump block1  block1: return v0 }",
/// )?;
/// let live = AppelLiveness::compute(&f, &VarUniverse::all(&f));
/// let v0 = f.params()[0];
/// assert!(live.is_live_in(v0, f.block_by_index(1)));
/// assert!(live.is_live_out(v0, f.entry_block()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct AppelLiveness {
    live_in: Vec<DenseBitSet>,
    live_out: Vec<DenseBitSet>,
    universe: VarUniverse,
    /// Set insertions performed (the algorithm's natural cost metric).
    pub set_insertions: usize,
}

impl AppelLiveness {
    /// Marks liveness for every variable of the universe.
    pub fn compute(func: &Function, universe: &VarUniverse) -> Self {
        let n_blocks = func.num_blocks();
        let n_vars = universe.len();
        let mut live_in: Vec<DenseBitSet> =
            (0..n_blocks).map(|_| DenseBitSet::new(n_vars)).collect();
        let mut live_out: Vec<DenseBitSet> =
            (0..n_blocks).map(|_| DenseBitSet::new(n_vars)).collect();
        let mut insertions = 0usize;

        let mut stack: Vec<Block> = Vec::new();
        for (i, &v) in universe.values().iter().enumerate() {
            let i = i as u32;
            let def = func.def_block(v);
            stack.clear();
            for &site in func.uses(v) {
                let u = func.inst_block(site).expect("use site removed");
                // A use in the defining block is not upward-exposed.
                if u != def && live_in[u.index()].insert(i) {
                    insertions += 1;
                    stack.push(u);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in func.preds(b.as_u32()) {
                    let pb = Block::from_index(p as usize);
                    if live_out[pb.index()].insert(i) {
                        insertions += 1;
                    }
                    if pb != def && live_in[pb.index()].insert(i) {
                        insertions += 1;
                        stack.push(pb);
                    }
                }
            }
        }

        AppelLiveness {
            live_in,
            live_out,
            universe: universe.clone(),
            set_insertions: insertions,
        }
    }

    /// Is `v` live-in at `b`? Untracked variables report `false`.
    pub fn is_live_in(&self, v: Value, b: Block) -> bool {
        self.universe
            .index_of(v)
            .is_some_and(|i| self.live_in[b.index()].contains(i))
    }

    /// Is `v` live-out at `b`? Untracked variables report `false`.
    pub fn is_live_out(&self, v: Value, b: Block) -> bool {
        self.universe
            .index_of(v)
            .is_some_and(|i| self.live_out[b.index()].contains(i))
    }
}

/// The Appel & Palsberg per-variable walker behind the workspace-wide
/// query interface (point queries via the default decomposition).
impl fastlive_core::LivenessProvider for AppelLiveness {
    fn live_in(&mut self, _func: &Function, v: Value, b: Block) -> bool {
        AppelLiveness::is_live_in(self, v, b)
    }
    fn live_out(&mut self, _func: &Function, v: Value, b: Block) -> bool {
        AppelLiveness::is_live_out(self, v, b)
    }
    fn name(&self) -> &'static str {
        "per-variable walk (Appel–Palsberg)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterativeLiveness;
    use fastlive_ir::parse_function;

    #[test]
    fn agrees_with_iterative_solver() {
        let sources = [
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
            "function %nested { block0(v0):
                jump block1(v0)
            block1(v1):
                jump block2(v1)
            block2(v2):
                v3 = icmp_slt v2, v1
                brif v3, block2(v2), block3
            block3:
                v4 = icmp_eq v1, v0
                brif v4, block1(v4), block4
            block4:
                return v2 }",
        ];
        for src in sources {
            let f = parse_function(src).unwrap();
            let u = VarUniverse::all(&f);
            let appel = AppelLiveness::compute(&f, &u);
            let iter = IterativeLiveness::compute(&f, &u);
            for v in f.values() {
                for b in f.blocks() {
                    assert_eq!(
                        appel.is_live_in(v, b),
                        iter.is_live_in(v, b),
                        "{}: live-in({v}, {b})",
                        f.name
                    );
                    assert_eq!(
                        appel.is_live_out(v, b),
                        iter.is_live_out(v, b),
                        "{}: live-out({v}, {b})",
                        f.name
                    );
                }
            }
            assert!(appel.set_insertions > 0);
        }
    }
}
