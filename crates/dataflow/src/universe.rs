use fastlive_ir::{Function, InstData, Value};

/// The set of variables a data-flow liveness analysis tracks, with
/// dense indices.
///
/// §6.2 of the paper: "the universe of the variables to consider is
/// collected in a table prior to liveness analysis. While doing so,
/// variables are assigned dense indices." LAO's SSA-destruction
/// configuration only tracks *φ-related* variables (results and
/// arguments of φ-functions); the full configuration tracks everything.
/// The paper measures both — φ-only live sets average 3.16 elements,
/// full-universe 18.52 — so both constructors exist here.
///
/// # Examples
///
/// ```
/// use fastlive_dataflow::VarUniverse;
/// use fastlive_ir::parse_function;
///
/// let f = parse_function(
///     "function %f { block0(v0):
///          v1 = iconst 1
///          jump block1(v1)
///      block1(v2):
///          return v2 }",
/// )?;
/// let all = VarUniverse::all(&f);
/// assert_eq!(all.len(), 3);
/// let phi = VarUniverse::phi_related(&f);
/// // v1 (argument) and v2 (result) are φ-related; v0 is not: entry
/// // parameters are function parameters, not φs.
/// assert_eq!(phi.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct VarUniverse {
    values: Vec<Value>,
    /// Dense index per value (`u32::MAX` = not tracked).
    index: Vec<u32>,
}

impl VarUniverse {
    const UNTRACKED: u32 = u32::MAX;

    fn from_values(func: &Function, values: Vec<Value>) -> Self {
        let mut index = vec![Self::UNTRACKED; func.num_values()];
        for (i, v) in values.iter().enumerate() {
            index[v.index()] = i as u32;
        }
        VarUniverse { values, index }
    }

    /// Every value of the function.
    pub fn all(func: &Function) -> Self {
        Self::from_values(func, func.values().collect())
    }

    /// Only the φ-related values: parameters of non-entry blocks (the
    /// φ results) and the branch arguments feeding them (the φ
    /// arguments). This is the universe LAO's SSA destruction uses.
    pub fn phi_related(func: &Function) -> Self {
        let mut related = vec![false; func.num_values()];
        let entry = func.entry_block();
        for b in func.blocks() {
            if b != entry {
                for &p in func.block_params(b) {
                    related[p.index()] = true;
                }
            }
            if let Some(t) = func.terminator(b) {
                if let InstData::Jump { .. } | InstData::Brif { .. } = func.inst_data(t) {
                    for call in func.inst_data(t).branch_targets() {
                        for &a in &call.args {
                            related[a.index()] = true;
                        }
                    }
                }
            }
        }
        let values = func.values().filter(|v| related[v.index()]).collect();
        Self::from_values(func, values)
    }

    /// Number of tracked variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Dense index of `v`, or `None` if untracked.
    pub fn index_of(&self, v: Value) -> Option<u32> {
        match self.index.get(v.index()) {
            Some(&i) if i != Self::UNTRACKED => Some(i),
            _ => None,
        }
    }

    /// The value with dense index `i`.
    pub fn value_at(&self, i: u32) -> Value {
        self.values[i as usize]
    }

    /// All tracked values in index order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::parse_function;

    #[test]
    fn all_assigns_dense_indices() {
        let f = parse_function("function %f { block0(v0): v1 = iadd v0, v0  return v1 }").unwrap();
        let u = VarUniverse::all(&f);
        assert_eq!(u.len(), 2);
        for (i, &v) in u.values().iter().enumerate() {
            assert_eq!(u.index_of(v), Some(i as u32));
            assert_eq!(u.value_at(i as u32), v);
        }
        assert!(!u.is_empty());
    }

    #[test]
    fn phi_related_covers_args_and_results() {
        let f = parse_function(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .unwrap();
        let u = VarUniverse::phi_related(&f);
        let tracked: Vec<String> = u.values().iter().map(|v| v.to_string()).collect();
        // v1 and v4 are φ arguments, v2 the φ result.
        assert_eq!(tracked, vec!["v1", "v2", "v4"]);
        assert_eq!(u.index_of(f.value("v0").unwrap()), None);
        assert_eq!(u.index_of(f.value("v3").unwrap()), None);
    }

    #[test]
    fn empty_universe() {
        let f = parse_function("function %f { block0: return }").unwrap();
        let u = VarUniverse::phi_related(&f);
        assert!(u.is_empty());
    }
}
