//! Baseline liveness engines and test oracles for the `fastlive`
//! workspace.
//!
//! The paper's evaluation (§6.2) compares its checker against the
//! production liveness analysis of the LAO code generator. This crate
//! re-implements that baseline from the paper's description, plus two
//! more reference points:
//!
//! * [`IterativeLiveness`] — a classic iterative data-flow solver with
//!   a stack worklist (Cooper, Harvey & Kennedy, "Iterative Data-Flow
//!   Analysis, Revisited"), bit-vector sets over a variable universe.
//! * [`LaoLiveness`] — the LAO engine as described in §6.2: a variable
//!   universe table with dense indices, Briggs–Torczon sparse sets for
//!   the local (per-block) analysis, global live sets stored as sorted
//!   dense arrays, and binary-search membership queries. Supports the
//!   φ-related-variable filtering LAO applies during SSA destruction.
//! * [`AppelLiveness`] — the per-variable SSA algorithm the related
//!   work (§7) attributes to Appel & Palsberg: walk backwards from each
//!   use through the predecessor graph, marking blocks until the
//!   definition is reached.
//! * [`oracle`] — a brute-force implementation of Definition 2 (path
//!   search avoiding the definition), the ground truth every engine in
//!   the workspace is tested against; [`oracle::live_at_value`]
//!   extends it to program points by literal backward simulation
//!   inside the queried block.
//!
//! All engines implement the same block-granularity semantics as
//! `fastlive-core` (φ-uses attributed to predecessor blocks per
//! Definition 1), so answers are comparable bit-for-bit. Each engine
//! also implements the workspace-wide
//! [`fastlive_core::LivenessProvider`] interface, inheriting point
//! queries from the trait's default block-query decomposition.
//!
//! [`IterativeLiveness`] additionally serves as the
//! [`fastlive` facade](https://docs.rs/fastlive)'s `Oracle` query
//! backend — the independent referee its differential suites hold the
//! checker-backed backends against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod appel;
mod iterative;
mod lao;
mod nullness;
pub mod oracle;
mod universe;

pub use appel::AppelLiveness;
pub use iterative::IterativeLiveness;
pub use lao::LaoLiveness;
pub use nullness::IterativeNullness;
pub use universe::VarUniverse;
