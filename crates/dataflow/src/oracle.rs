//! A brute-force liveness oracle implementing Definition 2 by literal
//! path search — the ground truth for every engine in the workspace.
//!
//! *"A variable `a` is live-in at a node `q` if there exists a path
//! from `q` to a node `u` where `a` is used and that path does not
//! contain `def(a)`."* The oracle searches for exactly such a path with
//! a BFS that refuses to enter `def(a)`. No dominance, no SSA tricks —
//! `O(V + E)` per query, unusable in a compiler, perfect in a test.
//!
//! The engines being checked assume strict SSA (every use dominated by
//! the definition) and reachable query blocks; callers of the oracle
//! must respect the same preconditions for comparisons to be
//! meaningful, and the randomized test suites do.

use fastlive_graph::{Cfg, NodeId};
use fastlive_ir::{Block, Function, ProgramPoint, Value};

/// Definition 2 by path search: is a variable defined at `def` and used
/// at `uses` live-in at `q`?
pub fn live_in<G: Cfg>(g: &G, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
    if q == def {
        // Every path from q contains def; the trivial path too.
        return false;
    }
    // BFS from q over G, never entering def.
    let mut seen = vec![false; g.num_nodes()];
    seen[q as usize] = true;
    let mut queue = vec![q];
    // The trivial path (just q) counts: a use at q witnesses liveness.
    while let Some(x) = queue.pop() {
        if uses.contains(&x) {
            return true; // x != def by construction
        }
        for &s in g.succs(x) {
            if s != def && !seen[s as usize] {
                seen[s as usize] = true;
                queue.push(s);
            }
        }
    }
    false
}

/// Definition 3: live-out iff live-in at some successor.
pub fn live_out<G: Cfg>(g: &G, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
    g.succs(q).iter().any(|&s| live_in(g, def, uses, s))
}

/// [`live_in`] for an IR value, with `def`/`uses` taken from the
/// function's def-use chains (Definition-1 use attribution).
pub fn live_in_value(func: &Function, v: Value, q: Block) -> bool {
    let uses: Vec<NodeId> = func.use_blocks(v).map(|b| b.as_u32()).collect();
    live_in(func, func.def_block(v).as_u32(), &uses, q.as_u32())
}

/// [`live_out`] for an IR value.
pub fn live_out_value(func: &Function, v: Value, q: Block) -> bool {
    let uses: Vec<NodeId> = func.use_blocks(v).map(|b| b.as_u32()).collect();
    live_out(func, func.def_block(v).as_u32(), &uses, q.as_u32())
}

/// Program-point liveness by literal backward simulation — the ground
/// truth for the point-granularity queries (`is_live_at` and the
/// `LivenessProvider` decomposition of `fastlive-core`).
///
/// Starts from the path-search [`live_out_value`] answer at the block
/// exit and walks the block's instructions *backward* down to `p`,
/// applying the textbook transfer function one instruction at a time:
/// crossing a definition of `v` kills it, crossing a use of `v`
/// (operands and branch arguments alike — Definition 1 attributes both
/// to this block) makes it live. No decomposition, no dominance — just
/// the definition of liveness at a point, `O(V + E + block length)`
/// per query.
pub fn live_at_value(func: &Function, v: Value, p: ProgramPoint) -> bool {
    let b = p.block();
    let mut live = live_out_value(func, v, b);
    let insts = func.block_insts(b);
    for i in (p.next_index()..insts.len()).rev() {
        let inst = insts[i];
        if func.inst_result(inst) == Some(v) {
            live = false; // the definition kills everything above it
        }
        let mut used = false;
        func.inst_data(inst).for_each_operand(|u| {
            if u == v {
                used = true;
            }
        });
        if used {
            live = true;
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppelLiveness, IterativeLiveness, LaoLiveness, VarUniverse};
    use fastlive_graph::DiGraph;
    use fastlive_ir::parse_function;

    #[test]
    fn trivial_path_counts() {
        let g = DiGraph::from_edges(2, 0, &[(0, 1)]);
        // Use at q itself, def elsewhere: live (trivial path).
        assert!(live_in(&g, 0, &[1], 1));
        // Live-in at the def block is always false.
        assert!(!live_in(&g, 0, &[0], 0));
    }

    #[test]
    fn paths_may_not_cross_the_definition() {
        // 0 -> 1 -> 2; def at 1, use at 2: not live-in at 0 because the
        // only path 0..2 passes the definition.
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        assert!(!live_in(&g, 1, &[2], 0));
        assert!(live_in(&g, 1, &[2], 2));
        assert!(live_out(&g, 1, &[2], 1));
        assert!(!live_out(&g, 1, &[2], 2));
    }

    #[test]
    fn loop_paths_found() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        // def 0, use 1: the back edge keeps it live out of 2.
        assert!(live_out(&g, 0, &[1], 2));
        assert!(!live_in(&g, 0, &[1], 3));
    }

    #[test]
    fn figure3_matches_narration() {
        let g = DiGraph::from_edges(
            11,
            0,
            &[
                (0, 1),
                (1, 2),
                (1, 10),
                (2, 3),
                (2, 7),
                (3, 4),
                (4, 5),
                (5, 6),
                (5, 4),
                (6, 1),
                (7, 8),
                (8, 9),
                (8, 5),
                (9, 7),
                (9, 10),
            ],
        );
        assert!(live_in(&g, 2, &[8], 9)); // x live-in at 10 (paper)
        assert!(live_in(&g, 2, &[4], 9)); // y live-in at 10
        assert!(!live_in(&g, 1, &[3], 9)); // w not live at 10
        assert!(!live_in(&g, 2, &[8], 3)); // x not live-in at 4
    }

    #[test]
    fn point_oracle_simulates_within_blocks() {
        let f = parse_function(
            "function %f { block0(v0):
                v1 = iconst 1
                v2 = iadd v0, v1
                return v2 }",
        )
        .unwrap();
        let b0 = f.entry_block();
        let v0 = f.params()[0];
        let v1 = f.value("v1").unwrap();
        let v2 = f.value("v2").unwrap();
        let points: Vec<ProgramPoint> = f.block_points(b0).collect();
        // v0: live until the iadd consumes it.
        assert!(live_at_value(&f, v0, points[0]));
        assert!(live_at_value(&f, v0, points[1]));
        assert!(!live_at_value(&f, v0, points[2]));
        // v1: born after the iconst, dead after the iadd.
        assert!(!live_at_value(&f, v1, points[0]));
        assert!(live_at_value(&f, v1, points[1]));
        assert!(!live_at_value(&f, v1, points[2]));
        // v2: live only between the iadd and the return.
        assert!(!live_at_value(&f, v2, points[1]));
        assert!(live_at_value(&f, v2, points[2]));
        assert!(!live_at_value(&f, v2, points[3]));
    }

    #[test]
    fn point_oracle_carries_loop_liveness_across_blocks() {
        let f = parse_function(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .unwrap();
        let v0 = f.params()[0];
        let b1 = f.blocks().nth(1).unwrap();
        // The loop bound is live at every point of the body.
        for p in f.block_points(b1) {
            assert!(live_at_value(&f, v0, p), "{p}");
        }
        // v0 is live-out of block0 (the loop compare needs it), so it
        // is live at every entry-block point too.
        for p in f.block_points(f.entry_block()) {
            assert!(live_at_value(&f, v0, p), "{p}");
        }
    }

    #[test]
    fn all_dataflow_engines_match_the_oracle() {
        let f = parse_function(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .unwrap();
        let u = VarUniverse::all(&f);
        let iter = IterativeLiveness::compute(&f, &u);
        let lao = LaoLiveness::compute(&f, &u);
        let appel = AppelLiveness::compute(&f, &u);
        for v in f.values() {
            for b in f.blocks() {
                let want_in = live_in_value(&f, v, b);
                let want_out = live_out_value(&f, v, b);
                assert_eq!(iter.is_live_in(v, b), want_in, "iter in {v} {b}");
                assert_eq!(lao.is_live_in(v, b), want_in, "lao in {v} {b}");
                assert_eq!(appel.is_live_in(v, b), want_in, "appel in {v} {b}");
                assert_eq!(iter.is_live_out(v, b), want_out, "iter out {v} {b}");
                assert_eq!(lao.is_live_out(v, b), want_out, "lao out {v} {b}");
                assert_eq!(appel.is_live_out(v, b), want_out, "appel out {v} {b}");
            }
        }
    }
}
