use fastlive_bitset::DenseBitSet;
use fastlive_cfg::DfsTree;
use fastlive_graph::Cfg as _;
use fastlive_ir::{Block, Function, Value};

use crate::universe::VarUniverse;

/// Classic iterative data-flow liveness with a stack worklist.
///
/// Solves the backward equations
///
/// ```text
/// live_out(b) = ⋃_{s ∈ succ(b)} live_in(s)
/// live_in(b)  = gen(b) ∪ (live_out(b) \ kill(b))
/// ```
///
/// with `gen(b)` the upward-exposed uses (Definition-1 uses of
/// variables not defined in `b` — under strict SSA every same-block use
/// follows its definition) and `kill(b)` the definitions. The worklist
/// is a plain stack seeded so that blocks pop in CFG postorder, which
/// Cooper, Harvey & Kennedy report as the effective order for liveness;
/// when a block's `live_in` changes its predecessors are pushed.
///
/// This is the "conventional data-flow approach" of the paper's
/// abstract: fast sets, but the results die with the first program
/// edit.
///
/// # Examples
///
/// ```
/// use fastlive_dataflow::{IterativeLiveness, VarUniverse};
/// use fastlive_ir::parse_function;
///
/// let f = parse_function(
///     "function %f { block0(v0):
///          jump block1
///      block1:
///          return v0 }",
/// )?;
/// let u = VarUniverse::all(&f);
/// let live = IterativeLiveness::compute(&f, &u);
/// let v0 = f.params()[0];
/// let b1 = f.block_by_index(1);
/// assert!(live.is_live_in(v0, b1));
/// assert!(live.is_live_out(v0, f.entry_block()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct IterativeLiveness {
    live_in: Vec<DenseBitSet>,
    live_out: Vec<DenseBitSet>,
    universe: VarUniverse,
    /// Number of block relaxations until the fixpoint (solver statistic;
    /// the paper notes LAO's runtime is bounded by set insertions, not
    /// iterations).
    pub relaxations: usize,
}

impl IterativeLiveness {
    /// Solves the equations for all variables in `universe`.
    pub fn compute(func: &Function, universe: &VarUniverse) -> Self {
        let n_blocks = func.num_blocks();
        let n_vars = universe.len();

        // gen/kill per block.
        let mut gen: Vec<DenseBitSet> = (0..n_blocks).map(|_| DenseBitSet::new(n_vars)).collect();
        let mut kill: Vec<DenseBitSet> = (0..n_blocks).map(|_| DenseBitSet::new(n_vars)).collect();
        for b in func.blocks() {
            let bi = b.index();
            for &p in func.block_params(b) {
                if let Some(i) = universe.index_of(p) {
                    kill[bi].insert(i);
                }
            }
            for &inst in func.block_insts(b) {
                if let Some(r) = func.inst_result(inst) {
                    if let Some(i) = universe.index_of(r) {
                        kill[bi].insert(i);
                    }
                }
                func.inst_data(inst).for_each_operand(|v| {
                    if let Some(i) = universe.index_of(v) {
                        if func.def_block(v) != b {
                            gen[bi].insert(i);
                        }
                    }
                });
            }
        }

        let mut live_in: Vec<DenseBitSet> =
            (0..n_blocks).map(|_| DenseBitSet::new(n_vars)).collect();
        let mut live_out: Vec<DenseBitSet> =
            (0..n_blocks).map(|_| DenseBitSet::new(n_vars)).collect();

        // Stack worklist; seed in reverse postorder so pops happen in
        // postorder (successors first — the natural order for a
        // backward problem).
        let dfs = DfsTree::compute(func);
        let mut stack: Vec<u32> = dfs.reverse_postorder().collect();
        let mut on_stack = vec![false; n_blocks];
        for &b in &stack {
            on_stack[b as usize] = true;
        }

        let mut relaxations = 0usize;
        let mut scratch = DenseBitSet::new(n_vars);
        while let Some(b) = stack.pop() {
            on_stack[b as usize] = false;
            relaxations += 1;
            // live_out(b) = union of successors' live_in.
            scratch.clear();
            for &s in func.succs(b) {
                scratch.union_with(&live_in[s as usize]);
            }
            live_out[b as usize] = scratch.clone();
            // live_in(b) = gen ∪ (out \ kill).
            scratch.difference_with(&kill[b as usize]);
            scratch.union_with(&gen[b as usize]);
            if scratch != live_in[b as usize] {
                std::mem::swap(&mut live_in[b as usize], &mut scratch);
                for &p in func.preds(b) {
                    if !on_stack[p as usize] {
                        on_stack[p as usize] = true;
                        stack.push(p);
                    }
                }
            }
        }

        IterativeLiveness {
            live_in,
            live_out,
            universe: universe.clone(),
            relaxations,
        }
    }

    /// Is `v` live-in at `b`? Untracked variables report `false`.
    pub fn is_live_in(&self, v: Value, b: Block) -> bool {
        self.universe
            .index_of(v)
            .is_some_and(|i| self.live_in[b.index()].contains(i))
    }

    /// Is `v` live-out at `b`? Untracked variables report `false`.
    pub fn is_live_out(&self, v: Value, b: Block) -> bool {
        self.universe
            .index_of(v)
            .is_some_and(|i| self.live_out[b.index()].contains(i))
    }

    /// The live-in set of `b` as values.
    pub fn live_in_set(&self, b: Block) -> Vec<Value> {
        self.live_in[b.index()]
            .iter()
            .map(|i| self.universe.value_at(i))
            .collect()
    }

    /// The live-out set of `b` as values.
    pub fn live_out_set(&self, b: Block) -> Vec<Value> {
        self.live_out[b.index()]
            .iter()
            .map(|i| self.universe.value_at(i))
            .collect()
    }

    /// Average number of live-in variables per block — the "fill ratio"
    /// §6.2 reports (3.16 φ-only / 18.52 full on SPEC2000).
    pub fn average_fill(&self) -> f64 {
        if self.live_in.is_empty() {
            return 0.0;
        }
        let total: usize = self.live_in.iter().map(DenseBitSet::len).sum();
        total as f64 / self.live_in.len() as f64
    }

    /// The universe the solver ran over.
    pub fn universe(&self) -> &VarUniverse {
        &self.universe
    }
}

/// The iterative solver behind the workspace-wide query interface.
/// Block answers are O(1) bit probes over the solved sets; point
/// queries use the trait's default decomposition over the current
/// def-use chains. Values outside the solver's universe report dead —
/// compute over [`VarUniverse::all`] when every value must be
/// answerable.
impl fastlive_core::LivenessProvider for IterativeLiveness {
    fn live_in(&mut self, _func: &Function, v: Value, b: Block) -> bool {
        IterativeLiveness::is_live_in(self, v, b)
    }
    fn live_out(&mut self, _func: &Function, v: Value, b: Block) -> bool {
        IterativeLiveness::is_live_out(self, v, b)
    }
    fn name(&self) -> &'static str {
        "bitvector data-flow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::parse_function;

    fn loop_func() -> Function {
        parse_function(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .unwrap()
    }

    #[test]
    fn loop_bound_live_through_loop() {
        let f = loop_func();
        let live = IterativeLiveness::compute(&f, &VarUniverse::all(&f));
        let v0 = f.params()[0];
        let b0 = f.entry_block();
        let b1 = f.block_by_index(1);
        let b2 = f.block_by_index(2);
        assert!(!live.is_live_in(v0, b0));
        assert!(live.is_live_out(v0, b0));
        assert!(live.is_live_in(v0, b1));
        assert!(live.is_live_out(v0, b1));
        assert!(!live.is_live_in(v0, b2));
        assert!(live.relaxations >= 3);
    }

    #[test]
    fn phi_convention_matches_definition1() {
        let f = loop_func();
        let live = IterativeLiveness::compute(&f, &VarUniverse::all(&f));
        let b0 = f.entry_block();
        let b1 = f.block_by_index(1);
        // v1 is a φ-arg defined and used (by the jump) in block0: not
        // upward exposed, not live-in at block1 either.
        let v1 = f.value("v1").unwrap();
        assert!(!live.is_live_out(v1, b0));
        assert!(!live.is_live_in(v1, b1));
        // v4 is a φ-arg on the back edge: used at block1 where it is
        // also defined => not live-in at block1; live-out there only
        // because block2 returns it... no: live_out(b1) = live_in(b1) ∪
        // live_in(b2); v4 ∈ gen(block2) => live-out at block1.
        let v4 = f.value("v4").unwrap();
        assert!(!live.is_live_in(v4, b1));
        assert!(live.is_live_out(v4, b1));
        // v2 (the φ result) is killed at block1 and used there only.
        let v2 = f.value("v2").unwrap();
        assert!(!live.is_live_in(v2, b1));
        assert!(!live.is_live_out(v2, b1));
    }

    #[test]
    fn restricted_universe_ignores_other_vars() {
        let f = loop_func();
        let phi = VarUniverse::phi_related(&f);
        let live = IterativeLiveness::compute(&f, &phi);
        let v0 = f.params()[0]; // not φ-related
        let b1 = f.block_by_index(1);
        assert!(!live.is_live_in(v0, b1)); // untracked => false
        let v4 = f.value("v4").unwrap();
        assert!(live.is_live_out(v4, b1));
        assert!(live.average_fill() <= 2.0);
    }

    #[test]
    fn live_sets_round_trip() {
        let f = loop_func();
        let live = IterativeLiveness::compute(&f, &VarUniverse::all(&f));
        let b1 = f.block_by_index(1);
        let set = live.live_in_set(b1);
        for v in &set {
            assert!(live.is_live_in(*v, b1));
        }
        assert!(set.contains(&f.params()[0]));
    }

    #[test]
    fn diamond_branches_merge() {
        let f = parse_function(
            "function %d { block0(v0, v1):
                brif v0, block1, block2
            block1:
                v2 = ineg v1
                jump block3(v2)
            block2:
                v3 = bnot v1
                jump block3(v3)
            block3(v4):
                return v4 }",
        )
        .unwrap();
        let live = IterativeLiveness::compute(&f, &VarUniverse::all(&f));
        let v1 = f.value("v1").unwrap();
        let b1 = f.block_by_index(1);
        let b2 = f.block_by_index(2);
        let b3 = f.block_by_index(3);
        assert!(live.is_live_in(v1, b1));
        assert!(live.is_live_in(v1, b2));
        assert!(!live.is_live_in(v1, b3));
        assert!(live.is_live_out(v1, f.entry_block()));
        let v2 = f.value("v2").unwrap();
        assert!(!live.is_live_in(v2, b3)); // φ-arg consumed on the edge
    }
}
