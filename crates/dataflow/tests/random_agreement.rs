//! Randomized agreement battery for the baseline engines, driven by the
//! workload generator (a dev-dependency; the production dependency
//! graph stays acyclic).

use fastlive_dataflow::{oracle, AppelLiveness, IterativeLiveness, LaoLiveness, VarUniverse};
use fastlive_workload::{generate_function, GenParams};

#[test]
fn engines_agree_with_oracle_across_sizes_and_shapes() {
    for seed in 0..20u64 {
        let params = GenParams {
            target_blocks: 6 + (seed as usize % 6) * 9,
            num_params: 1 + (seed % 4) as u32,
            loop_percent: 15 + (seed % 4) * 15,
            ..GenParams::default()
        };
        let (_, func) = generate_function(&format!("ra{seed}"), params, seed);
        let u = VarUniverse::all(&func);
        let iter = IterativeLiveness::compute(&func, &u);
        let lao = LaoLiveness::compute(&func, &u);
        let appel = AppelLiveness::compute(&func, &u);
        for v in func.values() {
            for b in func.blocks() {
                let want_in = oracle::live_in_value(&func, v, b);
                let want_out = oracle::live_out_value(&func, v, b);
                assert_eq!(
                    iter.is_live_in(v, b),
                    want_in,
                    "iter in {v}@{b} seed {seed}"
                );
                assert_eq!(lao.is_live_in(v, b), want_in, "lao in {v}@{b} seed {seed}");
                assert_eq!(
                    appel.is_live_in(v, b),
                    want_in,
                    "appel in {v}@{b} seed {seed}"
                );
                assert_eq!(
                    iter.is_live_out(v, b),
                    want_out,
                    "iter out {v}@{b} seed {seed}"
                );
                assert_eq!(
                    lao.is_live_out(v, b),
                    want_out,
                    "lao out {v}@{b} seed {seed}"
                );
                assert_eq!(
                    appel.is_live_out(v, b),
                    want_out,
                    "appel out {v}@{b} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn solver_statistics_behave_sanely() {
    // Loop-free programs converge without re-relaxation; loopier
    // programs do more work; insertions track live-set mass.
    let flat = generate_function(
        "flat",
        GenParams {
            target_blocks: 20,
            loop_percent: 0,
            ..GenParams::default()
        },
        7,
    )
    .1;
    let loopy = generate_function(
        "loopy",
        GenParams {
            target_blocks: 20,
            loop_percent: 80,
            ..GenParams::default()
        },
        7,
    )
    .1;
    let u_flat = VarUniverse::all(&flat);
    let u_loopy = VarUniverse::all(&loopy);
    let s_flat = IterativeLiveness::compute(&flat, &u_flat);
    let s_loopy = IterativeLiveness::compute(&loopy, &u_loopy);
    // A loop-free CFG needs exactly one relaxation per block.
    assert_eq!(s_flat.relaxations, flat.num_blocks());
    assert!(
        s_loopy.relaxations > loopy.num_blocks(),
        "back edges force re-relaxation"
    );

    let l_loopy = LaoLiveness::compute(&loopy, &u_loopy);
    assert!(l_loopy.set_insertions > 0);
    assert!(l_loopy.average_fill() > 0.0);
}

#[test]
fn phi_universe_tracks_only_phi_resources() {
    for seed in 30..40u64 {
        let params = GenParams {
            target_blocks: 25,
            ..GenParams::default()
        };
        let (_, func) = generate_function(&format!("pu{seed}"), params, seed);
        let phi = VarUniverse::phi_related(&func);
        let entry = func.entry_block();
        for &v in phi.values() {
            // Every tracked value is a non-entry block parameter or a
            // branch argument somewhere.
            let is_param = matches!(
                func.value_def(v),
                fastlive_ir::ValueDef::Param { block, .. } if block != entry
            );
            let is_branch_arg = func.uses(v).iter().any(|&i| {
                func.inst_data(i)
                    .branch_targets()
                    .iter()
                    .any(|c| c.args.contains(&v))
            });
            assert!(
                is_param || is_branch_arg,
                "{v} tracked but not φ-related (seed {seed})"
            );
        }
    }
}
