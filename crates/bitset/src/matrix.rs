use crate::{
    interval_mask, next_set_bit_in, union_words_masked, words_for, BitIter, DenseBitSet, WORD_BITS,
};

/// A dense 2-D bit matrix: `rows` bitsets over a shared universe of
/// `cols` elements, stored contiguously.
///
/// The liveness precomputation stores both closures this way: row `v` of
/// the *R*-matrix is `R_v` (blocks reduced-reachable from `v`,
/// Definition 4) and row `q` of the *T*-matrix is `T_q` (relevant
/// back-edge targets, Definition 5). Contiguous storage keeps the
/// propagation loops cache-friendly and makes whole-row unions cheap.
///
/// # Examples
///
/// ```
/// use fastlive_bitset::BitMatrix;
///
/// let mut m = BitMatrix::new(3, 10);
/// m.set(0, 4);
/// m.set(1, 9);
/// m.union_rows(0, 1); // row0 |= row1
/// assert!(m.contains(0, 9));
/// assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![4, 9]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    data: Vec<u64>,
    rows: usize,
    cols: usize,
    words_per_row: usize,
}

impl BitMatrix {
    /// Creates an all-zero matrix with `rows` rows over universe
    /// `0..cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        BitMatrix {
            data: vec![0; rows * words_per_row],
            rows,
            cols,
            words_per_row,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Universe size shared by all rows.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn row_range(&self, r: u32) -> std::ops::Range<usize> {
        let r = r as usize;
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        r * self.words_per_row..(r + 1) * self.words_per_row
    }

    /// Sets bit `(r, c)`; returns `true` if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    pub fn set(&mut self, r: u32, c: u32) -> bool {
        assert!(
            (c as usize) < self.cols,
            "column {c} out of range ({} cols)",
            self.cols
        );
        let range = self.row_range(r);
        let word = &mut self.data[range][c as usize / WORD_BITS];
        let mask = 1u64 << (c as usize % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Tests bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range. Out-of-range columns read as clear.
    pub fn contains(&self, r: u32, c: u32) -> bool {
        if c as usize >= self.cols {
            return false;
        }
        let range = self.row_range(r);
        self.data[range][c as usize / WORD_BITS] & (1u64 << (c as usize % WORD_BITS)) != 0
    }

    /// Row `r` as a word slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: u32) -> &[u64] {
        self.row_words(r)
    }

    /// Row `r` as its backing `u64` words (low bit of word 0 is column
    /// 0; bits at or above `cols` are always clear). This is the
    /// primitive behind the word-parallel query loops: callers scan
    /// masked words directly instead of testing bits one at a time.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row_words(&self, r: u32) -> &[u64] {
        let range = self.row_range(r);
        &self.data[range]
    }

    /// Returns `true` if row `r` has any set column in the **inclusive**
    /// interval `[lo, hi]` — the word-masked version of scanning the
    /// candidate interval `[num(def)+1, maxnum(def)]` of a `T` row.
    /// Empty intervals (`lo > hi`) and intervals beyond the universe
    /// report `false`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn intersects_in_range(&self, r: u32, lo: u32, hi: u32) -> bool {
        if lo > hi || lo as usize >= self.cols {
            return false;
        }
        let hi = (hi as usize).min(self.cols - 1);
        let words = self.row_words(r);
        let (lw, hw) = (lo as usize / WORD_BITS, hi / WORD_BITS);
        if lw == hw {
            return words[lw] & interval_mask(lo as usize, hi, lw) != 0;
        }
        if words[lw] & (!0u64 << (lo as usize % WORD_BITS)) != 0 {
            return true;
        }
        if words[lw + 1..hw].iter().any(|&w| w != 0) {
            return true;
        }
        words[hw] & (!0u64 >> (WORD_BITS - 1 - hi % WORD_BITS)) != 0
    }

    /// `self.row(dst) |= self.row(src) ∩ [lo, hi]` (inclusive interval)
    /// — a whole-row union restricted to a word-masked column interval.
    /// Returns `true` if the destination changed. `dst == src` and
    /// empty intervals are no-ops.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn union_rows_masked(&mut self, dst: u32, src: u32, lo: u32, hi: u32) -> bool {
        if dst == src {
            return false;
        }
        let cols = self.cols;
        let (d, s) = self.two_rows_mut(dst, src);
        union_words_masked(d, s, lo, hi, cols)
    }

    /// Mutable view of row `dst` together with a shared view of row
    /// `src`, `dst != src`. The borrow split is safe because distinct
    /// rows never overlap in `data`.
    fn two_rows_mut(&mut self, dst: u32, src: u32) -> (&mut [u64], &[u64]) {
        debug_assert_ne!(dst, src);
        let dst_range = self.row_range(dst);
        let src_range = self.row_range(src);
        let (lo, hi, dst_first) = if dst_range.start < src_range.start {
            (dst_range, src_range, true)
        } else {
            (src_range, dst_range, false)
        };
        let (head, tail) = self.data.split_at_mut(hi.start);
        let lo_slice = &mut head[lo];
        let hi_slice = &mut tail[..lo_slice.len()];
        if dst_first {
            (lo_slice, hi_slice)
        } else {
            (hi_slice, lo_slice)
        }
    }

    /// `self.row(r) |= other.row(other_row) ∩ [lo, hi]` — the
    /// cross-matrix form of [`union_rows_masked`](Self::union_rows_masked).
    /// Returns `true` if the row changed.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the universes differ.
    pub fn union_row_from_masked(
        &mut self,
        r: u32,
        other: &BitMatrix,
        other_row: u32,
        lo: u32,
        hi: u32,
    ) -> bool {
        assert_eq!(
            self.cols, other.cols,
            "universe mismatch in union_row_from_masked"
        );
        let dst = self.row_range(r);
        let src = other.row_range(other_row);
        union_words_masked(&mut self.data[dst], &other.data[src], lo, hi, self.cols)
    }

    /// `self.row(r) &= other.row(other_row)` — whole-row intersection
    /// across two matrices over the same universe. Returns `true` if
    /// the row changed.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the universes differ.
    pub fn intersect_row_from(&mut self, r: u32, other: &BitMatrix, other_row: u32) -> bool {
        assert_eq!(
            self.cols, other.cols,
            "universe mismatch in intersect_row_from"
        );
        let dst = self.row_range(r);
        let src = other.row_range(other_row);
        let mut changed = false;
        for (a, &b) in self.data[dst].iter_mut().zip(&other.data[src]) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `dst |= src` on whole rows; returns `true` if `dst` changed.
    /// `dst == src` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn union_rows(&mut self, dst: u32, src: u32) -> bool {
        if dst == src {
            return false;
        }
        let (d, s) = self.two_rows_mut(dst, src);
        let mut changed = false;
        for (a, &b) in d.iter_mut().zip(s) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Sets every column of row `r` (bits at or above the universe stay
    /// clear). An `O(cols/64)` word fill — the batch liveness pass uses
    /// it for its all-ones mask row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn fill_row(&mut self, r: u32) {
        let cols = self.cols;
        let range = self.row_range(r);
        let words = &mut self.data[range];
        if cols == 0 {
            return;
        }
        words.fill(!0u64);
        let tail_bits = cols % WORD_BITS;
        if tail_bits != 0 {
            *words.last_mut().expect("non-empty row") = !0u64 >> (WORD_BITS - tail_bits);
        }
    }

    /// `row |= set` for a [`DenseBitSet`] over the same universe; returns
    /// `true` if the row changed.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range or the universes differ.
    pub fn union_row_with_set(&mut self, r: u32, set: &DenseBitSet) -> bool {
        assert_eq!(
            set.universe(),
            self.cols,
            "universe mismatch in union_row_with_set"
        );
        let range = self.row_range(r);
        let mut changed = false;
        for (a, &b) in self.data[range].iter_mut().zip(set.as_words()) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self.row(r) |= other.row(other_row)` — whole-row union across
    /// two matrices over the same universe. Returns `true` if the row
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the universes differ.
    pub fn union_row_from(&mut self, r: u32, other: &BitMatrix, other_row: u32) -> bool {
        assert_eq!(self.cols, other.cols, "universe mismatch in union_row_from");
        let dst = self.row_range(r);
        let src = other.row_range(other_row);
        let mut changed = false;
        for (a, &b) in self.data[dst].iter_mut().zip(&other.data[src]) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self.row(r) &= !other.row(other_row)` — removes from row `r`
    /// every column set in `other`'s row. Returns `true` if the row
    /// changed. Used for the global `T_v \ R_v` filter of the liveness
    /// precomputation.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the universes differ.
    pub fn difference_row_from(&mut self, r: u32, other: &BitMatrix, other_row: u32) -> bool {
        assert_eq!(
            self.cols, other.cols,
            "universe mismatch in difference_row_from"
        );
        let dst = self.row_range(r);
        let src = other.row_range(other_row);
        let mut changed = false;
        for (a, &b) in self.data[dst].iter_mut().zip(&other.data[src]) {
            let new = *a & !b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// First set column `>= from` in row `r` (Algorithm 3's
    /// `bitset_next_set` over `T[q]`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn next_set_in_row(&self, r: u32, from: u32) -> Option<u32> {
        let range = self.row_range(r);
        next_set_bit_in(&self.data[range], self.cols, from)
    }

    /// Returns `true` if row `r` and `set` share an element — the
    /// `R_t ∩ uses(a) ≠ ∅` test of Algorithm 1 for bitset use-sets.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or universes differ.
    pub fn row_intersects_set(&self, r: u32, set: &DenseBitSet) -> bool {
        assert_eq!(
            set.universe(),
            self.cols,
            "universe mismatch in row_intersects_set"
        );
        let range = self.row_range(r);
        self.data[range]
            .iter()
            .zip(set.as_words())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Iterates the set columns of row `r` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_iter(&self, r: u32) -> BitIter<'_> {
        let range = self.row_range(r);
        BitIter::new(&self.data[range], self.cols)
    }

    /// Number of set bits in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_len(&self, r: u32) -> usize {
        let range = self.row_range(r);
        self.data[range]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Copies row `r` out into an owned [`DenseBitSet`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_to_set(&self, r: u32) -> DenseBitSet {
        DenseBitSet::from_elems(self.cols, self.row_iter(r))
    }

    /// Heap memory used by the matrix in bytes — the quantity behind the
    /// paper's §6.1 break-even discussion ("quadratic behavior of the
    /// precomputation ... especially its memory consumption").
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }

    /// The whole matrix as its backing words, row-major
    /// (`rows × ⌈cols/64⌉` words) — the stable accessor serialization
    /// codecs read. Together with [`rows`](Self::rows) and
    /// [`cols`](Self::cols) this is the matrix's complete state;
    /// [`from_words`](Self::from_words) is the inverse.
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Rebuilds a matrix from its dimensions and backing words — the
    /// decoding counterpart of [`as_words`](Self::as_words). Returns
    /// `None` (never panics) if `data` is not exactly
    /// `rows × ⌈cols/64⌉` words long or any row has bits set at or
    /// above the `cols` universe (either means the words did not come
    /// from a matrix of these dimensions — e.g. a corrupt cache file).
    pub fn from_words(rows: usize, cols: usize, data: Vec<u64>) -> Option<Self> {
        let words_per_row = words_for(cols);
        if data.len() != rows.checked_mul(words_per_row)? {
            return None;
        }
        let tail_bits = cols % WORD_BITS;
        if words_per_row > 0 && tail_bits != 0 {
            let tail_mask = !0u64 << tail_bits;
            for row in data.chunks_exact(words_per_row) {
                if row[words_per_row - 1] & tail_mask != 0 {
                    return None;
                }
            }
        }
        Some(BitMatrix {
            data,
            rows,
            cols,
            words_per_row,
        })
    }
}

impl std::fmt::Debug for BitMatrix {
    /// Writes each row as a list of set columns, e.g. `row0: [1, 2]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix {}x{} {{", self.rows, self.cols)?;
        for r in 0..self.rows as u32 {
            writeln!(f, "  row{r}: {:?}", self.row_iter(r).collect::<Vec<_>>())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_contains() {
        let mut m = BitMatrix::new(4, 70);
        assert!(m.set(0, 0));
        assert!(m.set(3, 69));
        assert!(!m.set(3, 69));
        assert!(m.contains(0, 0));
        assert!(m.contains(3, 69));
        assert!(!m.contains(1, 0));
        assert!(!m.contains(0, 1000)); // out-of-range column reads false
    }

    #[test]
    #[should_panic(expected = "row 4 out of range")]
    fn bad_row_panics() {
        BitMatrix::new(4, 8).set(4, 0);
    }

    #[test]
    #[should_panic(expected = "column 8 out of range")]
    fn bad_col_panics() {
        BitMatrix::new(4, 8).set(0, 8);
    }

    #[test]
    fn union_rows_both_directions() {
        let mut m = BitMatrix::new(3, 130);
        m.set(0, 5);
        m.set(2, 129);
        assert!(m.union_rows(0, 2)); // dst before src
        assert!(m.contains(0, 129));
        assert!(m.contains(0, 5));
        assert!(m.union_rows(2, 0)); // src before dst
        assert!(m.contains(2, 5));
        assert!(!m.union_rows(2, 0)); // fixed point
        assert!(!m.union_rows(1, 1)); // self-union is a no-op
    }

    #[test]
    fn union_row_with_set() {
        let mut m = BitMatrix::new(2, 70);
        let s = DenseBitSet::from_elems(70, [3, 68]);
        assert!(m.union_row_with_set(1, &s));
        assert!(!m.union_row_with_set(1, &s));
        assert_eq!(m.row_iter(1).collect::<Vec<_>>(), vec![3, 68]);
        assert!(!m.contains(0, 3));
    }

    #[test]
    fn next_set_in_row_and_iter() {
        let mut m = BitMatrix::new(2, 200);
        for c in [1u32, 64, 130] {
            m.set(1, c);
        }
        assert_eq!(m.next_set_in_row(1, 0), Some(1));
        assert_eq!(m.next_set_in_row(1, 2), Some(64));
        assert_eq!(m.next_set_in_row(1, 131), None);
        assert_eq!(m.next_set_in_row(0, 0), None);
        assert_eq!(m.row_iter(1).collect::<Vec<_>>(), vec![1, 64, 130]);
        assert_eq!(m.row_len(1), 3);
    }

    #[test]
    fn row_intersects_set() {
        let mut m = BitMatrix::new(1, 70);
        m.set(0, 65);
        let hit = DenseBitSet::from_elems(70, [65]);
        let miss = DenseBitSet::from_elems(70, [2]);
        assert!(m.row_intersects_set(0, &hit));
        assert!(!m.row_intersects_set(0, &miss));
    }

    #[test]
    fn cross_matrix_row_ops() {
        let mut a = BitMatrix::new(2, 130);
        let mut b = BitMatrix::new(3, 130);
        b.set(2, 5);
        b.set(2, 129);
        assert!(a.union_row_from(0, &b, 2));
        assert!(!a.union_row_from(0, &b, 2));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![5, 129]);

        a.set(0, 7);
        assert!(a.difference_row_from(0, &b, 2));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![7]);
        assert!(!a.difference_row_from(0, &b, 1)); // empty row removes nothing
        assert!(a.row_iter(1).next().is_none());
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn cross_matrix_universe_mismatch_panics() {
        let mut a = BitMatrix::new(1, 8);
        let b = BitMatrix::new(1, 9);
        a.union_row_from(0, &b, 0);
    }

    #[test]
    fn row_to_set_round_trips() {
        let mut m = BitMatrix::new(2, 40);
        m.set(0, 7);
        m.set(0, 39);
        let s = m.row_to_set(0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![7, 39]);
        assert_eq!(s.universe(), 40);
    }

    #[test]
    fn intersects_in_range_masks_word_boundaries() {
        let mut m = BitMatrix::new(2, 300);
        for c in [0u32, 63, 64, 130, 299] {
            m.set(0, c);
        }
        // Single-word intervals around each set bit.
        assert!(m.intersects_in_range(0, 0, 0));
        assert!(!m.intersects_in_range(0, 1, 62));
        assert!(m.intersects_in_range(0, 63, 63));
        assert!(m.intersects_in_range(0, 64, 64));
        assert!(!m.intersects_in_range(0, 65, 129));
        // Multi-word spans.
        assert!(m.intersects_in_range(0, 1, 63));
        assert!(m.intersects_in_range(0, 65, 299));
        assert!(m.intersects_in_range(0, 131, 299));
        assert!(!m.intersects_in_range(0, 131, 298));
        // Empty and out-of-universe intervals.
        assert!(!m.intersects_in_range(0, 10, 9));
        assert!(!m.intersects_in_range(0, 300, 400));
        assert!(m.intersects_in_range(0, 299, u32::MAX)); // hi clamps
                                                          // A clear row never intersects.
        assert!(!m.intersects_in_range(1, 0, 299));
    }

    #[test]
    fn intersects_in_range_matches_scalar_scan() {
        // Exhaustive check against next_set_in_row on a pseudo-random row.
        let mut m = BitMatrix::new(1, 200);
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for c in 0..200u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x >> 61 == 0 {
                m.set(0, c);
            }
        }
        for lo in 0..200u32 {
            for hi in lo..200 {
                let scalar = m.next_set_in_row(0, lo).is_some_and(|b| b <= hi);
                assert_eq!(m.intersects_in_range(0, lo, hi), scalar, "[{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn union_rows_masked_clips_to_interval() {
        let mut m = BitMatrix::new(3, 200);
        for c in [2u32, 63, 64, 100, 190] {
            m.set(1, c);
        }
        assert!(m.union_rows_masked(0, 1, 63, 100));
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![63, 64, 100]);
        assert!(!m.union_rows_masked(0, 1, 63, 100)); // fixed point
        assert!(m.union_rows_masked(0, 1, 0, 2)); // src after dst in memory
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![2, 63, 64, 100]);
        assert!(m.union_rows_masked(2, 1, 150, u32::MAX)); // dst after src
        assert_eq!(m.row_iter(2).collect::<Vec<_>>(), vec![190]);
        assert!(!m.union_rows_masked(0, 0, 0, 199)); // self-union no-op
        assert!(!m.union_rows_masked(2, 1, 80, 60)); // empty interval
    }

    #[test]
    fn union_row_from_masked_cross_matrix() {
        let mut a = BitMatrix::new(1, 130);
        let mut b = BitMatrix::new(2, 130);
        for c in [5u32, 64, 129] {
            b.set(1, c);
        }
        assert!(a.union_row_from_masked(0, &b, 1, 6, 129));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![64, 129]);
        assert!(!a.union_row_from_masked(0, &b, 1, 64, 64));
        assert!(a.union_row_from_masked(0, &b, 1, 0, 5));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![5, 64, 129]);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn union_row_from_masked_universe_mismatch_panics() {
        let mut a = BitMatrix::new(1, 8);
        let b = BitMatrix::new(1, 9);
        a.union_row_from_masked(0, &b, 0, 0, 7);
    }

    #[test]
    fn intersect_row_from_keeps_common_bits() {
        let mut a = BitMatrix::new(1, 130);
        let mut b = BitMatrix::new(1, 130);
        for c in [1u32, 64, 129] {
            a.set(0, c);
        }
        b.set(0, 64);
        b.set(0, 2);
        assert!(a.intersect_row_from(0, &b, 0));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![64]);
        assert!(!a.intersect_row_from(0, &b, 0)); // fixed point
    }

    #[test]
    fn fill_row_sets_exactly_the_universe() {
        let mut m = BitMatrix::new(2, 130);
        m.fill_row(1);
        assert_eq!(m.row_len(1), 130);
        assert_eq!(m.row_len(0), 0);
        assert!(m.contains(1, 129));
        assert!(!m.contains(1, 130));
        // Word-aligned universe: no partial tail word.
        let mut w = BitMatrix::new(1, 128);
        w.fill_row(0);
        assert_eq!(w.row_len(0), 128);
        // Zero-width universe is a no-op.
        let mut z = BitMatrix::new(1, 0);
        z.fill_row(0);
        assert_eq!(z.row_len(0), 0);
    }

    #[test]
    fn row_words_exposes_backing_words() {
        let mut m = BitMatrix::new(2, 130);
        m.set(1, 0);
        m.set(1, 64);
        m.set(1, 129);
        let w = m.row_words(1);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], 1);
        assert_eq!(w[1], 1);
        assert_eq!(w[2], 2);
        assert_eq!(m.row(1), w);
    }

    #[test]
    fn heap_bytes_is_quadraticish() {
        // n blocks -> n rows of ceil(n/64) words: the §6.1 memory model.
        let m = BitMatrix::new(100, 100);
        assert_eq!(m.heap_bytes(), 100 * 2 * 8);
    }

    #[test]
    fn words_round_trip() {
        let mut m = BitMatrix::new(3, 130);
        for (r, c) in [(0u32, 0u32), (1, 64), (2, 129)] {
            m.set(r, c);
        }
        let back = BitMatrix::from_words(3, 130, m.as_words().to_vec()).expect("valid words");
        assert_eq!(back, m);
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 130);
        // Degenerate shapes round-trip too.
        assert!(BitMatrix::from_words(0, 0, Vec::new()).is_some());
        assert!(BitMatrix::from_words(4, 0, Vec::new()).is_some());
    }

    #[test]
    fn from_words_rejects_malformed_input() {
        // Wrong length: 3 rows over 130 cols need 9 words.
        assert!(BitMatrix::from_words(3, 130, vec![0; 8]).is_none());
        assert!(BitMatrix::from_words(3, 130, vec![0; 10]).is_none());
        // Ghost bits above the universe (col 130 of a 130-col row).
        let mut words = vec![0u64; 9];
        words[2] = 1u64 << 2;
        assert!(BitMatrix::from_words(3, 130, words).is_none());
        // Word-aligned universes have no tail mask to violate.
        assert!(BitMatrix::from_words(1, 128, vec![!0u64; 2]).is_some());
    }

    #[test]
    fn debug_render() {
        let mut m = BitMatrix::new(2, 8);
        m.set(0, 1);
        let s = format!("{m:?}");
        assert!(s.contains("row0: [1]"));
        assert!(s.contains("row1: []"));
    }
}
