use crate::{kernels, next_set_bit_in, words_for, BitIter, DenseBitSet, WORD_BITS};

/// Words per 64-byte cache line — the row stride quantum and row start
/// alignment of the arena.
const CACHE_LINE_WORDS: usize = 8;
const CACHE_LINE_BYTES: usize = CACHE_LINE_WORDS * 8;

/// A dense 2-D bit matrix: `rows` bitsets over a shared universe of
/// `cols` elements, stored in a cache-conscious row-major arena.
///
/// The liveness precomputation stores both closures this way: row `v` of
/// the *R*-matrix is `R_v` (blocks reduced-reachable from `v`,
/// Definition 4) and row `q` of the *T*-matrix is `T_q` (relevant
/// back-edge targets, Definition 5). Contiguous storage keeps the
/// propagation loops cache-friendly and makes whole-row unions cheap.
///
/// # Arena layout
///
/// Multi-word rows are stored at a *padded stride* — `⌈cols/64⌉` words
/// rounded up to a whole number of cache lines — inside a buffer whose
/// first row is 64-byte aligned, so every row starts on a cache-line
/// boundary and spans the minimum number of lines. Single-word rows are
/// stored packed (stride 1): an 8-byte-aligned 8-byte row can never
/// straddle a line, so padding them would cost 8× memory for zero
/// locality gain. Padding words are invariantly zero and never escape:
/// [`row_words`](Self::row_words) returns the logical `⌈cols/64⌉`-word
/// view and [`to_words`](Self::to_words) emits the packed padding-free
/// encoding the persistence codec stores.
///
/// # Examples
///
/// ```
/// use fastlive_bitset::BitMatrix;
///
/// let mut m = BitMatrix::new(3, 10);
/// m.set(0, 4);
/// m.set(1, 9);
/// m.union_rows(0, 1); // row0 |= row1
/// assert!(m.contains(0, 9));
/// assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![4, 9]);
/// ```
pub struct BitMatrix {
    /// Backing buffer; row `r` lives at `offset + r * stride`. Words
    /// outside `offset..offset + rows * stride` and the per-row padding
    /// `words_per_row..stride` are always zero.
    data: Vec<u64>,
    /// Word index of row 0 — chosen at allocation so the arena starts on
    /// a 64-byte boundary (0 when `stride` is unpadded).
    offset: usize,
    rows: usize,
    cols: usize,
    words_per_row: usize,
    /// Padded row stride in words; see [`Self::stride_for`].
    stride: usize,
}

impl BitMatrix {
    /// Creates an all-zero matrix with `rows` rows over universe
    /// `0..cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        let stride = Self::stride_for(words_per_row);
        let (data, offset) = Self::alloc(rows, stride);
        BitMatrix {
            data,
            offset,
            rows,
            cols,
            words_per_row,
            stride,
        }
    }

    /// Row stride policy: multi-word rows round up to whole cache lines
    /// (so aligned rows touch the minimum number of lines); zero- and
    /// one-word rows stay packed (a single aligned word cannot straddle
    /// a line, so padding would only inflate memory).
    fn stride_for(words_per_row: usize) -> usize {
        if words_per_row <= 1 {
            words_per_row
        } else {
            words_per_row.next_multiple_of(CACHE_LINE_WORDS)
        }
    }

    /// Allocates the arena buffer and returns it with the word offset of
    /// row 0. For cache-line strides the buffer carries up to a line of
    /// slack so row 0 can start on a 64-byte boundary without any
    /// `unsafe` allocation tricks (the crate is `forbid(unsafe_code)`).
    fn alloc(rows: usize, stride: usize) -> (Vec<u64>, usize) {
        let need = rows * stride;
        if need == 0 {
            return (Vec::new(), 0);
        }
        if !stride.is_multiple_of(CACHE_LINE_WORDS) {
            return (vec![0; need], 0);
        }
        let data = vec![0u64; need + CACHE_LINE_WORDS - 1];
        let misalign = data.as_ptr() as usize % CACHE_LINE_BYTES;
        let offset = (CACHE_LINE_BYTES - misalign) % CACHE_LINE_BYTES / 8;
        (data, offset)
    }

    /// The live arena: `rows × stride` words starting at row 0.
    #[inline]
    fn arena(&self) -> &[u64] {
        &self.data[self.offset..self.offset + self.rows * self.stride]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Universe size shared by all rows.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Logical word range of row `r`: the `⌈cols/64⌉` words callers see.
    fn row_range(&self, r: u32) -> std::ops::Range<usize> {
        let r = r as usize;
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        let start = self.offset + r * self.stride;
        start..start + self.words_per_row
    }

    /// Full padded word range of row `r` — the whole-row kernels run
    /// over this: padding words are zero on both sides of any
    /// union/intersect/difference, so including them is free and keeps
    /// the interior a whole number of 4-word chunks.
    fn row_range_padded(&self, r: u32) -> std::ops::Range<usize> {
        let r = r as usize;
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        let start = self.offset + r * self.stride;
        start..start + self.stride
    }

    /// Sets bit `(r, c)`; returns `true` if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    pub fn set(&mut self, r: u32, c: u32) -> bool {
        assert!(
            (c as usize) < self.cols,
            "column {c} out of range ({} cols)",
            self.cols
        );
        let range = self.row_range(r);
        let word = &mut self.data[range][c as usize / WORD_BITS];
        let mask = 1u64 << (c as usize % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Tests bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range. Out-of-range columns read as clear.
    pub fn contains(&self, r: u32, c: u32) -> bool {
        if c as usize >= self.cols {
            return false;
        }
        let range = self.row_range(r);
        self.data[range][c as usize / WORD_BITS] & (1u64 << (c as usize % WORD_BITS)) != 0
    }

    /// Row `r` as a word slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: u32) -> &[u64] {
        self.row_words(r)
    }

    /// Row `r` as its backing `u64` words (low bit of word 0 is column
    /// 0; bits at or above `cols` are always clear). This is the
    /// primitive behind the word-parallel query loops: callers scan
    /// masked words directly instead of testing bits one at a time. The
    /// view is the logical `⌈cols/64⌉` words — arena stride padding is
    /// never exposed.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row_words(&self, r: u32) -> &[u64] {
        let range = self.row_range(r);
        &self.data[range]
    }

    /// Returns `true` if row `r` has any set column in the **inclusive**
    /// interval `[lo, hi]` — the word-masked version of scanning the
    /// candidate interval `[num(def)+1, maxnum(def)]` of a `T` row.
    /// Empty intervals (`lo > hi`) and intervals beyond the universe
    /// report `false`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn intersects_in_range(&self, r: u32, lo: u32, hi: u32) -> bool {
        kernels::range_intersects(self.row_words(r), lo, hi, self.cols)
    }

    /// The fused two-row interval test: `true` iff some column in the
    /// **inclusive** interval `[lo, hi]` is set in *both* row `r` of
    /// `self` and row `other_row` of `other`. One masked pass over the
    /// interval — each word is loaded once and ANDed across the two rows
    /// ([`kernels::range_intersects2`]). With `self` the `T`-matrix and
    /// `other` the transposed `R`-matrix, this is the liveness query's
    /// candidates walk collapsed into a single kernel.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the universes differ.
    #[inline]
    pub fn rows_intersect_in_range(
        &self,
        r: u32,
        other: &BitMatrix,
        other_row: u32,
        lo: u32,
        hi: u32,
    ) -> bool {
        assert_eq!(
            self.cols, other.cols,
            "universe mismatch in rows_intersect_in_range"
        );
        kernels::range_intersects2(
            self.row_words(r),
            other.row_words(other_row),
            lo,
            hi,
            self.cols,
        )
    }

    /// `self.row(dst) |= self.row(src) ∩ [lo, hi]` (inclusive interval)
    /// — a whole-row union restricted to a word-masked column interval.
    /// Returns `true` if the destination changed. `dst == src` and
    /// empty intervals are no-ops.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn union_rows_masked(&mut self, dst: u32, src: u32, lo: u32, hi: u32) -> bool {
        if dst == src {
            return false;
        }
        let cols = self.cols;
        let (d, s) = self.two_rows_mut(dst, src);
        kernels::union_masked(d, s, lo, hi, cols)
    }

    /// Mutable view of row `dst` together with a shared view of row
    /// `src`, `dst != src`, both at full padded stride. The borrow split
    /// is safe because distinct rows never overlap in `data`.
    fn two_rows_mut(&mut self, dst: u32, src: u32) -> (&mut [u64], &[u64]) {
        debug_assert_ne!(dst, src);
        let dst_range = self.row_range_padded(dst);
        let src_range = self.row_range_padded(src);
        let (lo, hi, dst_first) = if dst_range.start < src_range.start {
            (dst_range, src_range, true)
        } else {
            (src_range, dst_range, false)
        };
        let (head, tail) = self.data.split_at_mut(hi.start);
        let lo_slice = &mut head[lo];
        let hi_slice = &mut tail[..lo_slice.len()];
        if dst_first {
            (lo_slice, hi_slice)
        } else {
            (hi_slice, lo_slice)
        }
    }

    /// `self.row(r) |= other.row(other_row) ∩ [lo, hi]` — the
    /// cross-matrix form of [`union_rows_masked`](Self::union_rows_masked).
    /// Returns `true` if the row changed.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the universes differ.
    pub fn union_row_from_masked(
        &mut self,
        r: u32,
        other: &BitMatrix,
        other_row: u32,
        lo: u32,
        hi: u32,
    ) -> bool {
        assert_eq!(
            self.cols, other.cols,
            "universe mismatch in union_row_from_masked"
        );
        let dst = self.row_range(r);
        let src = other.row_range(other_row);
        kernels::union_masked(&mut self.data[dst], &other.data[src], lo, hi, self.cols)
    }

    /// `self.row(r) &= other.row(other_row)` — whole-row intersection
    /// across two matrices over the same universe. Returns `true` if
    /// the row changed.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the universes differ.
    pub fn intersect_row_from(&mut self, r: u32, other: &BitMatrix, other_row: u32) -> bool {
        assert_eq!(
            self.cols, other.cols,
            "universe mismatch in intersect_row_from"
        );
        let dst = self.row_range_padded(r);
        let src = other.row_range_padded(other_row);
        kernels::intersect_into(&mut self.data[dst], &other.data[src])
    }

    /// `dst |= src` on whole rows; returns `true` if `dst` changed.
    /// `dst == src` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn union_rows(&mut self, dst: u32, src: u32) -> bool {
        if dst == src {
            return false;
        }
        let (d, s) = self.two_rows_mut(dst, src);
        kernels::union_into(d, s)
    }

    /// Sets every column of row `r` (bits at or above the universe stay
    /// clear). An `O(cols/64)` word fill — the batch liveness pass uses
    /// it for its all-ones mask row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn fill_row(&mut self, r: u32) {
        let cols = self.cols;
        let range = self.row_range(r);
        let words = &mut self.data[range];
        if cols == 0 {
            return;
        }
        words.fill(!0u64);
        let tail_bits = cols % WORD_BITS;
        if tail_bits != 0 {
            *words.last_mut().expect("non-empty row") = !0u64 >> (WORD_BITS - tail_bits);
        }
    }

    /// `row |= set` for a [`DenseBitSet`] over the same universe; returns
    /// `true` if the row changed.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range or the universes differ.
    pub fn union_row_with_set(&mut self, r: u32, set: &DenseBitSet) -> bool {
        assert_eq!(
            set.universe(),
            self.cols,
            "universe mismatch in union_row_with_set"
        );
        let range = self.row_range(r);
        kernels::union_into(&mut self.data[range], set.as_words())
    }

    /// `self.row(r) |= other.row(other_row)` — whole-row union across
    /// two matrices over the same universe. Returns `true` if the row
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the universes differ.
    pub fn union_row_from(&mut self, r: u32, other: &BitMatrix, other_row: u32) -> bool {
        assert_eq!(self.cols, other.cols, "universe mismatch in union_row_from");
        let dst = self.row_range_padded(r);
        let src = other.row_range_padded(other_row);
        kernels::union_into(&mut self.data[dst], &other.data[src])
    }

    /// `self.row(r) &= !other.row(other_row)` — removes from row `r`
    /// every column set in `other`'s row. Returns `true` if the row
    /// changed. Used for the global `T_v \ R_v` filter of the liveness
    /// precomputation.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the universes differ.
    pub fn difference_row_from(&mut self, r: u32, other: &BitMatrix, other_row: u32) -> bool {
        assert_eq!(
            self.cols, other.cols,
            "universe mismatch in difference_row_from"
        );
        let dst = self.row_range_padded(r);
        let src = other.row_range_padded(other_row);
        kernels::difference_into(&mut self.data[dst], &other.data[src])
    }

    /// First set column `>= from` in row `r` (Algorithm 3's
    /// `bitset_next_set` over `T[q]`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn next_set_in_row(&self, r: u32, from: u32) -> Option<u32> {
        let range = self.row_range(r);
        next_set_bit_in(&self.data[range], self.cols, from)
    }

    /// Returns `true` if row `r` and `set` share an element — the
    /// `R_t ∩ uses(a) ≠ ∅` test of Algorithm 1 for bitset use-sets.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or universes differ.
    pub fn row_intersects_set(&self, r: u32, set: &DenseBitSet) -> bool {
        assert_eq!(
            set.universe(),
            self.cols,
            "universe mismatch in row_intersects_set"
        );
        kernels::intersects(self.row_words(r), set.as_words())
    }

    /// Iterates the set columns of row `r` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_iter(&self, r: u32) -> BitIter<'_> {
        let range = self.row_range(r);
        BitIter::new(&self.data[range], self.cols)
    }

    /// Number of set bits in row `r` — 4-wide chunked popcount
    /// ([`kernels::popcount`]).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_len(&self, r: u32) -> usize {
        kernels::popcount(self.row_words(r))
    }

    /// Copies row `r` out into an owned [`DenseBitSet`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_to_set(&self, r: u32) -> DenseBitSet {
        DenseBitSet::from_elems(self.cols, self.row_iter(r))
    }

    /// Heap memory used by the matrix in bytes, including arena stride
    /// padding and alignment slack — the quantity behind the paper's
    /// §6.1 break-even discussion ("quadratic behavior of the
    /// precomputation ... especially its memory consumption").
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }

    /// The matrix as packed row-major words (`rows × ⌈cols/64⌉` words,
    /// no arena padding) — the stable encoding serialization codecs
    /// store; byte-identical to the pre-arena layout. Together with
    /// [`rows`](Self::rows) and [`cols`](Self::cols) this is the
    /// matrix's complete state; [`from_words`](Self::from_words) is the
    /// inverse.
    pub fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.rows * self.words_per_row);
        for r in 0..self.rows {
            let start = self.offset + r * self.stride;
            out.extend_from_slice(&self.data[start..start + self.words_per_row]);
        }
        out
    }

    /// Rebuilds a matrix from its dimensions and packed backing words —
    /// the decoding counterpart of [`to_words`](Self::to_words). Returns
    /// `None` (never panics) if `data` is not exactly
    /// `rows × ⌈cols/64⌉` words long or any row has bits set at or
    /// above the `cols` universe (either means the words did not come
    /// from a matrix of these dimensions — e.g. a corrupt cache file).
    pub fn from_words(rows: usize, cols: usize, data: Vec<u64>) -> Option<Self> {
        let words_per_row = words_for(cols);
        if data.len() != rows.checked_mul(words_per_row)? {
            return None;
        }
        let tail_bits = cols % WORD_BITS;
        if words_per_row > 0 && tail_bits != 0 {
            let tail_mask = !0u64 << tail_bits;
            for row in data.chunks_exact(words_per_row) {
                if row[words_per_row - 1] & tail_mask != 0 {
                    return None;
                }
            }
        }
        let mut m = BitMatrix::new(rows, cols);
        if words_per_row > 0 {
            for (r, src) in data.chunks_exact(words_per_row).enumerate() {
                let start = m.offset + r * m.stride;
                m.data[start..start + words_per_row].copy_from_slice(src);
            }
        }
        Some(m)
    }

    /// The transposed matrix: `out.contains(c, r) == self.contains(r, c)`.
    /// Runs on 64×64 bit tiles through [`kernels::transpose64`] —
    /// `O(rows × cols / 64)` word work instead of a per-bit loop. The
    /// liveness checker uses this to derive the transposed reachability
    /// matrix its fused query kernel scans by *use* row.
    pub fn transposed(&self) -> BitMatrix {
        let mut out = BitMatrix::new(self.cols, self.rows);
        let mut tile = [0u64; 64];
        for rb in (0..self.rows).step_by(64) {
            let rcount = 64.min(self.rows - rb);
            let ow = rb / 64;
            for wb in 0..self.words_per_row {
                for (k, slot) in tile.iter_mut().enumerate().take(rcount) {
                    *slot = self.data[self.offset + (rb + k) * self.stride + wb];
                }
                tile[rcount..].fill(0);
                kernels::transpose64(&mut tile);
                let cbase = wb * 64;
                for (j, &word) in tile.iter().enumerate().take(64.min(self.cols - cbase)) {
                    if word != 0 {
                        let start = out.offset + (cbase + j) * out.stride;
                        out.data[start + ow] = word;
                    }
                }
            }
        }
        out
    }
}

/// Manual clone: the arena offset depends on the new allocation's
/// address, so the buffer is re-aligned and the arena copied across.
impl Clone for BitMatrix {
    fn clone(&self) -> Self {
        let (mut data, offset) = Self::alloc(self.rows, self.stride);
        let need = self.rows * self.stride;
        data[offset..offset + need].copy_from_slice(self.arena());
        BitMatrix {
            data,
            offset,
            rows: self.rows,
            cols: self.cols,
            words_per_row: self.words_per_row,
            stride: self.stride,
        }
    }
}

/// Equality is dimensions + bits. The arenas compare as whole slices:
/// stride is a pure function of `cols` and padding words are invariantly
/// zero, so arena equality is exactly bit-for-bit row equality.
impl PartialEq for BitMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.arena() == other.arena()
    }
}

impl Eq for BitMatrix {}

impl std::fmt::Debug for BitMatrix {
    /// Writes each row as a list of set columns, e.g. `row0: [1, 2]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix {}x{} {{", self.rows, self.cols)?;
        for r in 0..self.rows as u32 {
            writeln!(f, "  row{r}: {:?}", self.row_iter(r).collect::<Vec<_>>())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_contains() {
        let mut m = BitMatrix::new(4, 70);
        assert!(m.set(0, 0));
        assert!(m.set(3, 69));
        assert!(!m.set(3, 69));
        assert!(m.contains(0, 0));
        assert!(m.contains(3, 69));
        assert!(!m.contains(1, 0));
        assert!(!m.contains(0, 1000)); // out-of-range column reads false
    }

    #[test]
    #[should_panic(expected = "row 4 out of range")]
    fn bad_row_panics() {
        BitMatrix::new(4, 8).set(4, 0);
    }

    #[test]
    #[should_panic(expected = "column 8 out of range")]
    fn bad_col_panics() {
        BitMatrix::new(4, 8).set(0, 8);
    }

    #[test]
    fn union_rows_both_directions() {
        let mut m = BitMatrix::new(3, 130);
        m.set(0, 5);
        m.set(2, 129);
        assert!(m.union_rows(0, 2)); // dst before src
        assert!(m.contains(0, 129));
        assert!(m.contains(0, 5));
        assert!(m.union_rows(2, 0)); // src before dst
        assert!(m.contains(2, 5));
        assert!(!m.union_rows(2, 0)); // fixed point
        assert!(!m.union_rows(1, 1)); // self-union is a no-op
    }

    #[test]
    fn union_row_with_set() {
        let mut m = BitMatrix::new(2, 70);
        let s = DenseBitSet::from_elems(70, [3, 68]);
        assert!(m.union_row_with_set(1, &s));
        assert!(!m.union_row_with_set(1, &s));
        assert_eq!(m.row_iter(1).collect::<Vec<_>>(), vec![3, 68]);
        assert!(!m.contains(0, 3));
    }

    #[test]
    fn next_set_in_row_and_iter() {
        let mut m = BitMatrix::new(2, 200);
        for c in [1u32, 64, 130] {
            m.set(1, c);
        }
        assert_eq!(m.next_set_in_row(1, 0), Some(1));
        assert_eq!(m.next_set_in_row(1, 2), Some(64));
        assert_eq!(m.next_set_in_row(1, 131), None);
        assert_eq!(m.next_set_in_row(0, 0), None);
        assert_eq!(m.row_iter(1).collect::<Vec<_>>(), vec![1, 64, 130]);
        assert_eq!(m.row_len(1), 3);
    }

    #[test]
    fn row_intersects_set() {
        let mut m = BitMatrix::new(1, 70);
        m.set(0, 65);
        let hit = DenseBitSet::from_elems(70, [65]);
        let miss = DenseBitSet::from_elems(70, [2]);
        assert!(m.row_intersects_set(0, &hit));
        assert!(!m.row_intersects_set(0, &miss));
    }

    #[test]
    fn cross_matrix_row_ops() {
        let mut a = BitMatrix::new(2, 130);
        let mut b = BitMatrix::new(3, 130);
        b.set(2, 5);
        b.set(2, 129);
        assert!(a.union_row_from(0, &b, 2));
        assert!(!a.union_row_from(0, &b, 2));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![5, 129]);

        a.set(0, 7);
        assert!(a.difference_row_from(0, &b, 2));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![7]);
        assert!(!a.difference_row_from(0, &b, 1)); // empty row removes nothing
        assert!(a.row_iter(1).next().is_none());
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn cross_matrix_universe_mismatch_panics() {
        let mut a = BitMatrix::new(1, 8);
        let b = BitMatrix::new(1, 9);
        a.union_row_from(0, &b, 0);
    }

    #[test]
    fn row_to_set_round_trips() {
        let mut m = BitMatrix::new(2, 40);
        m.set(0, 7);
        m.set(0, 39);
        let s = m.row_to_set(0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![7, 39]);
        assert_eq!(s.universe(), 40);
    }

    #[test]
    fn intersects_in_range_masks_word_boundaries() {
        let mut m = BitMatrix::new(2, 300);
        for c in [0u32, 63, 64, 130, 299] {
            m.set(0, c);
        }
        // Single-word intervals around each set bit.
        assert!(m.intersects_in_range(0, 0, 0));
        assert!(!m.intersects_in_range(0, 1, 62));
        assert!(m.intersects_in_range(0, 63, 63));
        assert!(m.intersects_in_range(0, 64, 64));
        assert!(!m.intersects_in_range(0, 65, 129));
        // Multi-word spans.
        assert!(m.intersects_in_range(0, 1, 63));
        assert!(m.intersects_in_range(0, 65, 299));
        assert!(m.intersects_in_range(0, 131, 299));
        assert!(!m.intersects_in_range(0, 131, 298));
        // Empty and out-of-universe intervals.
        assert!(!m.intersects_in_range(0, 10, 9));
        assert!(!m.intersects_in_range(0, 300, 400));
        assert!(m.intersects_in_range(0, 299, u32::MAX)); // hi clamps
                                                          // A clear row never intersects.
        assert!(!m.intersects_in_range(1, 0, 299));
    }

    #[test]
    fn intersects_in_range_matches_scalar_scan() {
        // Exhaustive check against next_set_in_row on a pseudo-random row.
        let mut m = BitMatrix::new(1, 200);
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for c in 0..200u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x >> 61 == 0 {
                m.set(0, c);
            }
        }
        for lo in 0..200u32 {
            for hi in lo..200 {
                let scalar = m.next_set_in_row(0, lo).is_some_and(|b| b <= hi);
                assert_eq!(m.intersects_in_range(0, lo, hi), scalar, "[{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn rows_intersect_in_range_is_the_pairwise_and() {
        let mut a = BitMatrix::new(1, 300);
        let mut b = BitMatrix::new(2, 300);
        for c in [3u32, 64, 130, 299] {
            a.set(0, c);
        }
        for c in [64u32, 131, 299] {
            b.set(1, c);
        }
        // Common bits: 64 and 299 only.
        assert!(a.rows_intersect_in_range(0, &b, 1, 0, 299));
        assert!(a.rows_intersect_in_range(0, &b, 1, 64, 64));
        assert!(a.rows_intersect_in_range(0, &b, 1, 65, u32::MAX)); // hi clamps to 299
        assert!(!a.rows_intersect_in_range(0, &b, 1, 65, 298));
        assert!(!a.rows_intersect_in_range(0, &b, 1, 0, 63));
        assert!(!a.rows_intersect_in_range(0, &b, 1, 100, 60)); // empty interval
        assert!(!a.rows_intersect_in_range(0, &b, 0, 0, 299)); // empty row
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn rows_intersect_in_range_universe_mismatch_panics() {
        let a = BitMatrix::new(1, 8);
        let b = BitMatrix::new(1, 9);
        a.rows_intersect_in_range(0, &b, 0, 0, 7);
    }

    #[test]
    fn union_rows_masked_clips_to_interval() {
        let mut m = BitMatrix::new(3, 200);
        for c in [2u32, 63, 64, 100, 190] {
            m.set(1, c);
        }
        assert!(m.union_rows_masked(0, 1, 63, 100));
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![63, 64, 100]);
        assert!(!m.union_rows_masked(0, 1, 63, 100)); // fixed point
        assert!(m.union_rows_masked(0, 1, 0, 2)); // src after dst in memory
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![2, 63, 64, 100]);
        assert!(m.union_rows_masked(2, 1, 150, u32::MAX)); // dst after src
        assert_eq!(m.row_iter(2).collect::<Vec<_>>(), vec![190]);
        assert!(!m.union_rows_masked(0, 0, 0, 199)); // self-union no-op
        assert!(!m.union_rows_masked(2, 1, 80, 60)); // empty interval
    }

    #[test]
    fn union_row_from_masked_cross_matrix() {
        let mut a = BitMatrix::new(1, 130);
        let mut b = BitMatrix::new(2, 130);
        for c in [5u32, 64, 129] {
            b.set(1, c);
        }
        assert!(a.union_row_from_masked(0, &b, 1, 6, 129));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![64, 129]);
        assert!(!a.union_row_from_masked(0, &b, 1, 64, 64));
        assert!(a.union_row_from_masked(0, &b, 1, 0, 5));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![5, 64, 129]);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn union_row_from_masked_universe_mismatch_panics() {
        let mut a = BitMatrix::new(1, 8);
        let b = BitMatrix::new(1, 9);
        a.union_row_from_masked(0, &b, 0, 0, 7);
    }

    #[test]
    fn intersect_row_from_keeps_common_bits() {
        let mut a = BitMatrix::new(1, 130);
        let mut b = BitMatrix::new(1, 130);
        for c in [1u32, 64, 129] {
            a.set(0, c);
        }
        b.set(0, 64);
        b.set(0, 2);
        assert!(a.intersect_row_from(0, &b, 0));
        assert_eq!(a.row_iter(0).collect::<Vec<_>>(), vec![64]);
        assert!(!a.intersect_row_from(0, &b, 0)); // fixed point
    }

    #[test]
    fn fill_row_sets_exactly_the_universe() {
        let mut m = BitMatrix::new(2, 130);
        m.fill_row(1);
        assert_eq!(m.row_len(1), 130);
        assert_eq!(m.row_len(0), 0);
        assert!(m.contains(1, 129));
        assert!(!m.contains(1, 130));
        // Word-aligned universe: no partial tail word.
        let mut w = BitMatrix::new(1, 128);
        w.fill_row(0);
        assert_eq!(w.row_len(0), 128);
        // Zero-width universe is a no-op.
        let mut z = BitMatrix::new(1, 0);
        z.fill_row(0);
        assert_eq!(z.row_len(0), 0);
    }

    #[test]
    fn row_words_exposes_backing_words() {
        let mut m = BitMatrix::new(2, 130);
        m.set(1, 0);
        m.set(1, 64);
        m.set(1, 129);
        let w = m.row_words(1);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], 1);
        assert_eq!(w[1], 1);
        assert_eq!(w[2], 2);
        assert_eq!(m.row(1), w);
    }

    #[test]
    fn arena_rows_are_cache_line_aligned() {
        // Multi-word rows: stride rounds up to whole cache lines and
        // every row starts on a 64-byte boundary.
        let m = BitMatrix::new(5, 130); // 3 words/row -> stride 8
        for r in 0..5u32 {
            let addr = m.row_words(r).as_ptr() as usize;
            assert_eq!(addr % 64, 0, "row {r} not 64-byte aligned");
        }
        // Single-word rows stay packed: consecutive rows are adjacent.
        let p = BitMatrix::new(4, 60);
        let r0 = p.row_words(0).as_ptr() as usize;
        let r1 = p.row_words(1).as_ptr() as usize;
        assert_eq!(r1 - r0, 8, "1-word rows must not be padded");
    }

    #[test]
    fn clone_and_eq_survive_the_arena() {
        let mut m = BitMatrix::new(5, 200);
        for (r, c) in [(0u32, 0u32), (1, 63), (2, 64), (3, 199), (4, 100)] {
            m.set(r, c);
        }
        let c = m.clone();
        assert_eq!(c, m);
        for r in 0..5u32 {
            let addr = c.row_words(r).as_ptr() as usize;
            assert_eq!(addr % 64, 0, "cloned row {r} not re-aligned");
        }
        let mut d = c.clone();
        d.set(4, 101);
        assert_ne!(d, m);
    }

    #[test]
    fn heap_bytes_reports_the_padded_arena() {
        // Multi-word rows: ceil(100/64) = 2 words pad to a full 8-word
        // cache line per row, plus up to 7 words of alignment slack.
        let m = BitMatrix::new(100, 100);
        assert_eq!(m.heap_bytes(), (100 * 8 + 7) * 8);
        // Single-word rows keep the packed §6.1 memory model: n rows of
        // one word each, no padding, no slack.
        let p = BitMatrix::new(100, 50);
        assert_eq!(p.heap_bytes(), 100 * 8);
    }

    #[test]
    fn words_round_trip() {
        let mut m = BitMatrix::new(3, 130);
        for (r, c) in [(0u32, 0u32), (1, 64), (2, 129)] {
            m.set(r, c);
        }
        let words = m.to_words();
        // Packed encoding: exactly rows x ceil(cols/64), padding-free.
        assert_eq!(words.len(), 3 * 3);
        let back = BitMatrix::from_words(3, 130, words).expect("valid words");
        assert_eq!(back, m);
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 130);
        // Degenerate shapes round-trip too.
        assert!(BitMatrix::from_words(0, 0, Vec::new()).is_some());
        assert!(BitMatrix::from_words(4, 0, Vec::new()).is_some());
    }

    #[test]
    fn from_words_rejects_malformed_input() {
        // Wrong length: 3 rows over 130 cols need 9 words.
        assert!(BitMatrix::from_words(3, 130, vec![0; 8]).is_none());
        assert!(BitMatrix::from_words(3, 130, vec![0; 10]).is_none());
        // Ghost bits above the universe (col 130 of a 130-col row).
        let mut words = vec![0u64; 9];
        words[2] = 1u64 << 2;
        assert!(BitMatrix::from_words(3, 130, words).is_none());
        // Word-aligned universes have no tail mask to violate.
        assert!(BitMatrix::from_words(1, 128, vec![!0u64; 2]).is_some());
    }

    #[test]
    fn transposed_flips_every_bit() {
        let mut m = BitMatrix::new(150, 90);
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut bits = Vec::new();
        for r in 0..150u32 {
            for c in 0..90u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x >> 60 == 0 {
                    m.set(r, c);
                    bits.push((r, c));
                }
            }
        }
        let t = m.transposed();
        assert_eq!(t.rows(), 90);
        assert_eq!(t.cols(), 150);
        for r in 0..150u32 {
            for c in 0..90u32 {
                assert_eq!(t.contains(c, r), m.contains(r, c), "bit ({r},{c})");
            }
        }
        // Involution: transposing twice restores the original.
        assert_eq!(t.transposed(), m);
        // Degenerate shapes.
        assert_eq!(BitMatrix::new(0, 7).transposed().rows(), 7);
        assert_eq!(BitMatrix::new(7, 0).transposed().cols(), 7);
    }

    #[test]
    fn debug_render() {
        let mut m = BitMatrix::new(2, 8);
        m.set(0, 1);
        let s = format!("{m:?}");
        assert!(s.contains("row0: [1]"));
        assert!(s.contains("row1: []"));
    }
}
