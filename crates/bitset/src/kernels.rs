//! Chunked `u64×4` word kernels — the hot inner loops of every bitset
//! operation, written with four explicit accumulators so the compiler
//! autovectorizes them (one 256-bit op per chunk on AVX2, two 128-bit
//! ops on NEON/SSE2), plus the original scalar loops retained as
//! `*_scalar` differential baselines.
//!
//! # Conventions
//!
//! * Every wide kernel has a `*_scalar` twin computing the same
//!   function with the plain one-word-at-a-time loop it replaced
//!   (mirroring the `is_live_in_scalar` convention of the query layer).
//!   The property suite (`tests/kernel_differential.rs`) pins them
//!   bit-for-bit equal across word-boundary sweeps.
//! * Binary kernels use *zip semantics*: they operate on the common
//!   prefix `min(dst.len(), src.len())` like the `Iterator::zip` loops
//!   they replaced.
//! * Masked kernels take an **inclusive** bit interval `[lo, hi]` and a
//!   `len` bit bound, exactly like the former `union_words_masked`;
//!   empty (`lo > hi`) and out-of-universe intervals are no-ops.
//! * All mutating kernels report whether `dst` changed, accumulated as
//!   XOR deltas in the same four lanes (no per-word branch).

use crate::{interval_mask, WORD_BITS};

/// Chunk width of the wide kernels: 4 × u64 = 256 bits = half a cache
/// line per step.
pub const LANES: usize = 4;

/// `dst |= src`; returns `true` if `dst` changed. Wide kernel.
#[inline]
pub fn union_into(dst: &mut [u64], src: &[u64]) -> bool {
    let n = dst.len().min(src.len());
    union_words(&mut dst[..n], &src[..n]) != 0
}

/// `dst |= src` as the retained scalar baseline.
pub fn union_into_scalar(dst: &mut [u64], src: &[u64]) -> bool {
    let mut changed = false;
    for (a, &b) in dst.iter_mut().zip(src) {
        let new = *a | b;
        changed |= new != *a;
        *a = new;
    }
    changed
}

/// `dst |= src` over equal-length slices, returning the OR of all
/// changed bits (non-zero iff anything changed). The shared interior
/// of [`union_into`] and [`union_masked`].
#[inline]
fn union_words(dst: &mut [u64], src: &[u64]) -> u64 {
    let split = dst.len() - dst.len() % LANES;
    let mut delta = [0u64; LANES];
    for (d, s) in dst[..split]
        .chunks_exact_mut(LANES)
        .zip(src[..split].chunks_exact(LANES))
    {
        let n0 = d[0] | s[0];
        let n1 = d[1] | s[1];
        let n2 = d[2] | s[2];
        let n3 = d[3] | s[3];
        delta[0] |= d[0] ^ n0;
        delta[1] |= d[1] ^ n1;
        delta[2] |= d[2] ^ n2;
        delta[3] |= d[3] ^ n3;
        d[0] = n0;
        d[1] = n1;
        d[2] = n2;
        d[3] = n3;
    }
    let mut tail = 0u64;
    for (a, &b) in dst[split..].iter_mut().zip(&src[split..]) {
        let new = *a | b;
        tail |= *a ^ new;
        *a = new;
    }
    delta[0] | delta[1] | delta[2] | delta[3] | tail
}

/// `dst &= src`; returns `true` if `dst` changed. Wide kernel.
#[inline]
pub fn intersect_into(dst: &mut [u64], src: &[u64]) -> bool {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let split = n - n % LANES;
    let mut delta = [0u64; LANES];
    for (d, s) in dst[..split]
        .chunks_exact_mut(LANES)
        .zip(src[..split].chunks_exact(LANES))
    {
        let n0 = d[0] & s[0];
        let n1 = d[1] & s[1];
        let n2 = d[2] & s[2];
        let n3 = d[3] & s[3];
        delta[0] |= d[0] ^ n0;
        delta[1] |= d[1] ^ n1;
        delta[2] |= d[2] ^ n2;
        delta[3] |= d[3] ^ n3;
        d[0] = n0;
        d[1] = n1;
        d[2] = n2;
        d[3] = n3;
    }
    let mut tail = 0u64;
    for (a, &b) in dst[split..].iter_mut().zip(&src[split..]) {
        let new = *a & b;
        tail |= *a ^ new;
        *a = new;
    }
    (delta[0] | delta[1] | delta[2] | delta[3] | tail) != 0
}

/// `dst &= src` as the retained scalar baseline.
pub fn intersect_into_scalar(dst: &mut [u64], src: &[u64]) -> bool {
    let mut changed = false;
    for (a, &b) in dst.iter_mut().zip(src) {
        let new = *a & b;
        changed |= new != *a;
        *a = new;
    }
    changed
}

/// `dst &= !src` (set difference); returns `true` if `dst` changed.
/// Wide kernel.
#[inline]
pub fn difference_into(dst: &mut [u64], src: &[u64]) -> bool {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let split = n - n % LANES;
    let mut delta = [0u64; LANES];
    for (d, s) in dst[..split]
        .chunks_exact_mut(LANES)
        .zip(src[..split].chunks_exact(LANES))
    {
        let n0 = d[0] & !s[0];
        let n1 = d[1] & !s[1];
        let n2 = d[2] & !s[2];
        let n3 = d[3] & !s[3];
        delta[0] |= d[0] ^ n0;
        delta[1] |= d[1] ^ n1;
        delta[2] |= d[2] ^ n2;
        delta[3] |= d[3] ^ n3;
        d[0] = n0;
        d[1] = n1;
        d[2] = n2;
        d[3] = n3;
    }
    let mut tail = 0u64;
    for (a, &b) in dst[split..].iter_mut().zip(&src[split..]) {
        let new = *a & !b;
        tail |= *a ^ new;
        *a = new;
    }
    (delta[0] | delta[1] | delta[2] | delta[3] | tail) != 0
}

/// `dst &= !src` as the retained scalar baseline.
pub fn difference_into_scalar(dst: &mut [u64], src: &[u64]) -> bool {
    let mut changed = false;
    for (a, &b) in dst.iter_mut().zip(src) {
        let new = *a & !b;
        changed |= new != *a;
        *a = new;
    }
    changed
}

/// Total set-bit count of `words` — 4-wide `count_ones` accumulation.
#[inline]
pub fn popcount(words: &[u64]) -> usize {
    let split = words.len() - words.len() % LANES;
    let mut acc = [0usize; LANES];
    for c in words[..split].chunks_exact(LANES) {
        acc[0] += c[0].count_ones() as usize;
        acc[1] += c[1].count_ones() as usize;
        acc[2] += c[2].count_ones() as usize;
        acc[3] += c[3].count_ones() as usize;
    }
    let tail: usize = words[split..].iter().map(|w| w.count_ones() as usize).sum();
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Set-bit count as the retained scalar baseline.
pub fn popcount_scalar(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// `a ∩ b ≠ ∅` over the common prefix — 4-wide AND with one combined
/// zero test per chunk, exiting on the first overlapping chunk.
#[inline]
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let split = n - n % LANES;
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        if (ca[0] & cb[0]) | (ca[1] & cb[1]) | (ca[2] & cb[2]) | (ca[3] & cb[3]) != 0 {
            return true;
        }
    }
    a[split..n]
        .iter()
        .zip(&b[split..n])
        .any(|(&x, &y)| x & y != 0)
}

/// `a ∩ b ≠ ∅` as the retained scalar baseline.
pub fn intersects_scalar(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(&x, &y)| x & y != 0)
}

/// `a ⊆ b` over the common prefix — 4-wide `a & !b` accumulation.
#[inline]
pub fn is_subset(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let split = n - n % LANES;
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        if (ca[0] & !cb[0]) | (ca[1] & !cb[1]) | (ca[2] & !cb[2]) | (ca[3] & !cb[3]) != 0 {
            return false;
        }
    }
    a[split..n]
        .iter()
        .zip(&b[split..n])
        .all(|(&x, &y)| x & !y == 0)
}

/// `a ⊆ b` as the retained scalar baseline.
pub fn is_subset_scalar(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(&x, &y)| x & !y == 0)
}

/// `dst |= src ∩ [lo, hi]` (inclusive bit interval) over slices
/// spanning `len` bits; returns `true` if `dst` changed. The two edge
/// words carry the interval masks; the interior runs through the
/// unmasked 4-wide [`union_into`] kernel — no per-word re-masking.
pub fn union_masked(dst: &mut [u64], src: &[u64], lo: u32, hi: u32, len: usize) -> bool {
    if len == 0 || lo > hi || lo as usize >= len {
        return false;
    }
    let lo = lo as usize;
    let hi = (hi as usize).min(len - 1);
    let (lw, hw) = (lo / WORD_BITS, hi / WORD_BITS);
    if lw == hw {
        let add = src[lw] & interval_mask(lo, hi, lw);
        let new = dst[lw] | add;
        let changed = new != dst[lw];
        dst[lw] = new;
        return changed;
    }
    let mut delta;
    {
        let add = src[lw] & (!0u64 << (lo % WORD_BITS));
        let new = dst[lw] | add;
        delta = dst[lw] ^ new;
        dst[lw] = new;
    }
    delta |= union_words(&mut dst[lw + 1..hw], &src[lw + 1..hw]);
    {
        let add = src[hw] & (!0u64 >> (WORD_BITS - 1 - hi % WORD_BITS));
        let new = dst[hw] | add;
        delta |= dst[hw] ^ new;
        dst[hw] = new;
    }
    delta != 0
}

/// `dst |= src ∩ [lo, hi]` as the retained scalar baseline: one
/// interval mask per word, exactly the loop [`union_masked`] replaced.
pub fn union_masked_scalar(dst: &mut [u64], src: &[u64], lo: u32, hi: u32, len: usize) -> bool {
    if len == 0 || lo > hi || lo as usize >= len {
        return false;
    }
    let lo = lo as usize;
    let hi = (hi as usize).min(len - 1);
    let (lw, hw) = (lo / WORD_BITS, hi / WORD_BITS);
    let mut changed = false;
    for wi in lw..=hw {
        let add = src[wi] & interval_mask(lo, hi, wi);
        let new = dst[wi] | add;
        changed |= new != dst[wi];
        dst[wi] = new;
    }
    changed
}

/// Any set bit of `words` in the inclusive bit interval `[lo, hi]`
/// (bits bounded by `len`)? Edge words are masked once; interior words
/// run 4-wide with a single combined zero test per chunk.
#[inline]
pub fn range_intersects(words: &[u64], lo: u32, hi: u32, len: usize) -> bool {
    if len == 0 || lo > hi || lo as usize >= len {
        return false;
    }
    let lo = lo as usize;
    let hi = (hi as usize).min(len - 1);
    let (lw, hw) = (lo / WORD_BITS, hi / WORD_BITS);
    if lw == hw {
        return words[lw] & interval_mask(lo, hi, lw) != 0;
    }
    if words[lw] & (!0u64 << (lo % WORD_BITS)) != 0 {
        return true;
    }
    let interior = &words[lw + 1..hw];
    let split = interior.len() - interior.len() % LANES;
    for c in interior[..split].chunks_exact(LANES) {
        if c[0] | c[1] | c[2] | c[3] != 0 {
            return true;
        }
    }
    if interior[split..].iter().any(|&w| w != 0) {
        return true;
    }
    words[hw] & (!0u64 >> (WORD_BITS - 1 - hi % WORD_BITS)) != 0
}

/// [`range_intersects`] as the retained scalar baseline: one masked
/// word test per interval word.
pub fn range_intersects_scalar(words: &[u64], lo: u32, hi: u32, len: usize) -> bool {
    if len == 0 || lo > hi || lo as usize >= len {
        return false;
    }
    let lo = lo as usize;
    let hi = (hi as usize).min(len - 1);
    let (lw, hw) = (lo / WORD_BITS, hi / WORD_BITS);
    (lw..=hw).any(|wi| words[wi] & interval_mask(lo, hi, wi) != 0)
}

/// The fused two-row interval test: `a ∩ b ∩ [lo, hi] ≠ ∅` in one pass
/// — each word of the interval is loaded once, ANDed across the two
/// rows, edge words masked once, interior 4-wide. This is the query
/// layer's fused `T_q` candidates kernel: with `a` a `T` row and `b` a
/// transposed-`R` row, it decides `∃ t ∈ T_q ∩ (def, maxnum(def)]`
/// with `use ∈ R_t` without materializing a single candidate.
#[inline]
pub fn range_intersects2(a: &[u64], b: &[u64], lo: u32, hi: u32, len: usize) -> bool {
    if len == 0 || lo > hi || lo as usize >= len {
        return false;
    }
    let lo = lo as usize;
    let hi = (hi as usize).min(len - 1);
    let (lw, hw) = (lo / WORD_BITS, hi / WORD_BITS);
    if lw == hw {
        return a[lw] & b[lw] & interval_mask(lo, hi, lw) != 0;
    }
    if a[lw] & b[lw] & (!0u64 << (lo % WORD_BITS)) != 0 {
        return true;
    }
    let (ia, ib) = (&a[lw + 1..hw], &b[lw + 1..hw]);
    let split = ia.len() - ia.len() % LANES;
    for (ca, cb) in ia[..split]
        .chunks_exact(LANES)
        .zip(ib[..split].chunks_exact(LANES))
    {
        if (ca[0] & cb[0]) | (ca[1] & cb[1]) | (ca[2] & cb[2]) | (ca[3] & cb[3]) != 0 {
            return true;
        }
    }
    if ia[split..]
        .iter()
        .zip(&ib[split..])
        .any(|(&x, &y)| x & y != 0)
    {
        return true;
    }
    a[hw] & b[hw] & (!0u64 >> (WORD_BITS - 1 - hi % WORD_BITS)) != 0
}

/// [`range_intersects2`] as the retained scalar baseline: one masked
/// two-row word test per interval word.
pub fn range_intersects2_scalar(a: &[u64], b: &[u64], lo: u32, hi: u32, len: usize) -> bool {
    if len == 0 || lo > hi || lo as usize >= len {
        return false;
    }
    let lo = lo as usize;
    let hi = (hi as usize).min(len - 1);
    let (lw, hw) = (lo / WORD_BITS, hi / WORD_BITS);
    (lw..=hw).any(|wi| a[wi] & b[wi] & interval_mask(lo, hi, wi) != 0)
}

/// Transposes a 64×64 bit tile in place: bit `c` of `a[r]` moves to
/// bit `r` of `a[c]`. The recursive block-swap of Hacker's Delight
/// §7-3 (log₂ 64 = 6 rounds of masked XOR swaps), with the shift roles
/// mirrored for the crate's LSB-first column convention.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32;
    let mut m = 0x0000_0000_ffff_ffffu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_words(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn wide_binary_kernels_match_scalar_on_odd_lengths() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17] {
            for seed in 1..4u64 {
                let src = rng_words(seed * 0x9e37, n);
                let base = rng_words(seed * 0x51ab, n);
                for (wide, scalar) in [
                    (
                        union_into as fn(&mut [u64], &[u64]) -> bool,
                        union_into_scalar as fn(&mut [u64], &[u64]) -> bool,
                    ),
                    (intersect_into, intersect_into_scalar),
                    (difference_into, difference_into_scalar),
                ] {
                    let mut a = base.clone();
                    let mut b = base.clone();
                    assert_eq!(wide(&mut a, &src), scalar(&mut b, &src), "n={n}");
                    assert_eq!(a, b, "n={n}");
                    // Idempotent second application reports no change.
                    assert_eq!(wide(&mut a, &src), scalar(&mut b, &src), "n={n}");
                }
                assert_eq!(popcount(&src), popcount_scalar(&src), "n={n}");
                assert_eq!(intersects(&base, &src), intersects_scalar(&base, &src));
                assert_eq!(is_subset(&base, &src), is_subset_scalar(&base, &src));
                let mut sub = base.clone();
                intersect_into(&mut sub, &src);
                assert!(is_subset(&sub, &src));
            }
        }
    }

    #[test]
    fn transpose64_round_trips_and_transposes() {
        let mut a: [u64; 64] = rng_words(0xdead_beef, 64).try_into().unwrap();
        let orig = a;
        transpose64(&mut a);
        for (r, &row) in orig.iter().enumerate() {
            for (c, &col) in a.iter().enumerate() {
                assert_eq!(
                    col >> r & 1,
                    row >> c & 1,
                    "bit ({r},{c}) did not transpose"
                );
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig, "transpose is an involution");
    }
}
