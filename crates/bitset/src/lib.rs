//! Set data structures used by the `fastlive` liveness engines.
//!
//! The paper's practical sections prescribe specific representations and
//! this crate provides all of them:
//!
//! * [`DenseBitSet`] — fixed-capacity bitset with the `next_set_bit`
//!   primitive that drives the bitset liveness check (Algorithm 3, §5.1).
//! * [`BitMatrix`] — one bitset row per CFG node; the transitive closures
//!   `R_v` and the back-edge-target sets `T_v` are stored this way.
//! * [`SparseSet`] — the Briggs–Torczon sparse set used by the LAO
//!   baseline's local (per-block) liveness analysis (§6.2).
//! * [`SortedSet`] — a sorted dense array with binary-search membership,
//!   the LAO baseline's global live-set representation (§6.2) and the
//!   memory-lean alternative for `T_v`/`R_v` discussed in §6.1 and §8.
//! * [`kernels`] — the chunked `u64×4` wide-word loops the structures
//!   above share, each retaining its original scalar loop as a
//!   `*_scalar` differential baseline.
//!
//! All structures hold `u32` elements below a fixed *universe* size, which
//! is how compiler analyses index blocks and variables.
//!
//! # Examples
//!
//! ```
//! use fastlive_bitset::DenseBitSet;
//!
//! let mut live = DenseBitSet::new(128);
//! live.insert(3);
//! live.insert(64);
//! assert_eq!(live.next_set_bit(4), Some(64));
//! assert_eq!(live.iter().collect::<Vec<_>>(), vec![3, 64]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
pub mod kernels;
mod matrix;
mod sorted;
mod sparse;

pub use dense::DenseBitSet;
pub use matrix::BitMatrix;
pub use sorted::SortedSet;
pub use sparse::SparseSet;

/// Number of bits per storage word.
pub(crate) const WORD_BITS: usize = u64::BITS as usize;

/// Number of `u64` words needed to hold `bits` bits.
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Scans `words` for the first set bit at position `>= from`, where `words`
/// conceptually holds `len` bits. Shared by [`DenseBitSet`] and
/// [`BitMatrix`] rows.
pub(crate) fn next_set_bit_in(words: &[u64], len: usize, from: u32) -> Option<u32> {
    let from = from as usize;
    if from >= len {
        return None;
    }
    let mut wi = from / WORD_BITS;
    let mut word = words[wi] & (!0u64 << (from % WORD_BITS));
    loop {
        if word != 0 {
            let bit = wi * WORD_BITS + word.trailing_zeros() as usize;
            return if bit < len { Some(bit as u32) } else { None };
        }
        wi += 1;
        if wi >= words.len() {
            return None;
        }
        word = words[wi];
    }
}

/// Mask selecting, within word `wi`, the bits of the inclusive column
/// interval `[lo, hi]` (full words inside the interval get `!0`).
pub(crate) fn interval_mask(lo: usize, hi: usize, wi: usize) -> u64 {
    debug_assert!(lo <= hi);
    let mut mask = !0u64;
    if wi == lo / WORD_BITS {
        mask &= !0u64 << (lo % WORD_BITS);
    }
    if wi == hi / WORD_BITS {
        mask &= !0u64 >> (WORD_BITS - 1 - hi % WORD_BITS);
    }
    if wi < lo / WORD_BITS || wi > hi / WORD_BITS {
        mask = 0;
    }
    mask
}

/// Iterator over the set bits of a word slice (ascending order).
#[derive(Clone, Debug)]
pub struct BitIter<'a> {
    words: &'a [u64],
    len: usize,
    next: u32,
}

impl<'a> BitIter<'a> {
    pub(crate) fn new(words: &'a [u64], len: usize) -> Self {
        BitIter {
            words,
            len,
            next: 0,
        }
    }
}

impl Iterator for BitIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let bit = next_set_bit_in(self.words, self.len, self.next)?;
        self.next = bit + 1;
        Some(bit)
    }
}
