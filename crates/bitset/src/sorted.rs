/// A set of `u32` values stored as a sorted dense array with binary-search
/// membership.
///
/// This is the representation the paper attributes to LAO's production
/// liveness analysis (§6.2: "sets represented as sorted dense arrays of
/// pointers ... testing set membership only requires a binary search,
/// which takes logarithmic time in the set cardinality") and the
/// space-saving alternative for `T_v`/`R_v` suggested in §6.1 and §8
/// ("future implementations could use sorted arrays instead of bitsets").
///
/// Memory is proportional to the number of *elements*, not the universe,
/// which is what moves the §6.1 break-even point.
///
/// # Examples
///
/// ```
/// use fastlive_bitset::SortedSet;
///
/// let s = SortedSet::from_unsorted(vec![9, 3, 3, 7]);
/// assert_eq!(s.as_slice(), &[3, 7, 9]);
/// assert!(s.contains(7));
/// assert!(!s.contains(4));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct SortedSet {
    elems: Vec<u32>,
}

impl SortedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SortedSet::default()
    }

    /// Builds a set from arbitrary input, sorting and deduplicating.
    pub fn from_unsorted(mut elems: Vec<u32>) -> Self {
        elems.sort_unstable();
        elems.dedup();
        SortedSet { elems }
    }

    /// Wraps a slice that is already strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the input is not strictly increasing.
    pub fn from_sorted(elems: Vec<u32>) -> Self {
        debug_assert!(
            elems.windows(2).all(|w| w[0] < w[1]),
            "input not strictly increasing"
        );
        SortedSet { elems }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Binary-search membership test — the query operation of the LAO
    /// baseline.
    pub fn contains(&self, elem: u32) -> bool {
        self.elems.binary_search(&elem).is_ok()
    }

    /// Inserts `elem` keeping order; returns `true` if it was absent.
    /// O(n) worst case — LAO builds sets once and queries many times.
    pub fn insert(&mut self, elem: u32) -> bool {
        match self.elems.binary_search(&elem) {
            Ok(_) => false,
            Err(pos) => {
                self.elems.insert(pos, elem);
                true
            }
        }
    }

    /// Removes `elem`; returns `true` if it was present.
    pub fn remove(&mut self, elem: u32) -> bool {
        match self.elems.binary_search(&elem) {
            Ok(pos) => {
                self.elems.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// First element `>= from`, mirroring
    /// [`DenseBitSet::next_set_bit`](crate::DenseBitSet::next_set_bit) so
    /// the sorted-array liveness engine can share the Algorithm 3 loop
    /// structure.
    pub fn next_at_least(&self, from: u32) -> Option<u32> {
        let pos = self.elems.partition_point(|&e| e < from);
        self.elems.get(pos).copied()
    }

    /// Returns `true` if `self` and `other` share an element, by linear
    /// merge (both sets sorted).
    pub fn intersects(&self, other: &SortedSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Merges `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &SortedSet) -> bool {
        if other.elems.is_empty() {
            return false;
        }
        let mut merged = Vec::with_capacity(self.elems.len() + other.elems.len());
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.elems[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.elems[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.elems[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.elems[i..]);
        merged.extend_from_slice(&other.elems[j..]);
        let changed = merged.len() != self.elems.len();
        self.elems = merged;
        changed
    }

    /// The elements in increasing order.
    pub fn as_slice(&self) -> &[u32] {
        &self.elems
    }

    /// Iterates elements in increasing order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, u32>> {
        self.elems.iter().copied()
    }

    /// Heap bytes used — proportional to cardinality, unlike a bitset
    /// (§6.1's memory comparison).
    pub fn heap_bytes(&self) -> usize {
        self.elems.capacity() * std::mem::size_of::<u32>()
    }

    /// Shrinks capacity to fit, making [`heap_bytes`](Self::heap_bytes)
    /// reflect cardinality exactly.
    pub fn shrink_to_fit(&mut self) {
        self.elems.shrink_to_fit();
    }
}

impl FromIterator<u32> for SortedSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        SortedSet::from_unsorted(iter.into_iter().collect())
    }
}

impl std::fmt::Debug for SortedSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = SortedSet::from_unsorted(vec![5, 1, 5, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_via_binary_search() {
        let s: SortedSet = (0..100).step_by(3).collect();
        assert!(s.contains(0));
        assert!(s.contains(99));
        assert!(!s.contains(98));
        assert!(!SortedSet::new().contains(0));
    }

    #[test]
    fn insert_keeps_order() {
        let mut s = SortedSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert_eq!(s.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn remove_works() {
        let mut s = SortedSet::from_unsorted(vec![1, 2, 3]);
        assert!(s.remove(2));
        assert!(!s.remove(2));
        assert_eq!(s.as_slice(), &[1, 3]);
    }

    #[test]
    fn next_at_least_mirrors_next_set_bit() {
        let s = SortedSet::from_unsorted(vec![2, 7, 40]);
        assert_eq!(s.next_at_least(0), Some(2));
        assert_eq!(s.next_at_least(2), Some(2));
        assert_eq!(s.next_at_least(3), Some(7));
        assert_eq!(s.next_at_least(41), None);
    }

    #[test]
    fn intersects_by_merge() {
        let a = SortedSet::from_unsorted(vec![1, 5, 9]);
        let b = SortedSet::from_unsorted(vec![2, 5]);
        let c = SortedSet::from_unsorted(vec![0, 2, 4]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&SortedSet::new()));
    }

    #[test]
    fn union_with_merges() {
        let mut a = SortedSet::from_unsorted(vec![1, 5]);
        let b = SortedSet::from_unsorted(vec![2, 5, 9]);
        assert!(a.union_with(&b));
        assert_eq!(a.as_slice(), &[1, 2, 5, 9]);
        assert!(!a.union_with(&b));
        assert!(!a.union_with(&SortedSet::new()));
    }

    #[test]
    fn agrees_with_dense_bitset() {
        use crate::DenseBitSet;
        let elems = [3u32, 17, 64, 65, 127];
        let sorted: SortedSet = elems.iter().copied().collect();
        let dense = DenseBitSet::from_elems(128, elems);
        for e in 0..128u32 {
            assert_eq!(sorted.contains(e), dense.contains(e), "disagree on {e}");
        }
        for from in 0..128u32 {
            assert_eq!(
                sorted.next_at_least(from),
                dense.next_set_bit(from),
                "from {from}"
            );
        }
    }

    #[test]
    fn heap_bytes_tracks_cardinality() {
        let mut s: SortedSet = (0..32u32).collect();
        s.shrink_to_fit();
        assert_eq!(s.heap_bytes(), 32 * 4);
    }
}
