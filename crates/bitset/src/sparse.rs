/// The sparse set of Briggs & Torczon ("An Efficient Representation for
/// Sparse Sets", LOPLAS 1993).
///
/// Offers O(1) insert / remove / membership / clear *without* initializing
/// the backing storage per clear, plus iteration in insertion order over
/// only the present elements. §6.2 of the paper notes that LAO's baseline
/// liveness performs its local (per-block) analysis with exactly this
/// structure, so the [`lao` engine](https://docs.rs/fastlive-dataflow)
/// uses this implementation.
///
/// Unlike the classic formulation, the backing arrays *are* zero-initialized
/// here (safe Rust), but the O(1) `clear` — the property that matters when
/// the same scratch set is reused for every block — is preserved.
///
/// # Examples
///
/// ```
/// use fastlive_bitset::SparseSet;
///
/// let mut s = SparseSet::new(100);
/// s.insert(42);
/// s.insert(7);
/// assert!(s.contains(42));
/// s.clear(); // O(1)
/// assert!(!s.contains(42));
/// ```
#[derive(Clone)]
pub struct SparseSet {
    /// Elements currently in the set, densely packed.
    dense: Vec<u32>,
    /// `sparse[e]` is the index of `e` in `dense`, if `e` is present.
    sparse: Vec<u32>,
}

impl SparseSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        SparseSet {
            dense: Vec::new(),
            sparse: vec![0; universe],
        }
    }

    /// The universe size (exclusive upper bound on elements).
    pub fn universe(&self) -> usize {
        self.sparse.len()
    }

    /// Number of elements currently present.
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// Returns `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// Membership test in O(1).
    pub fn contains(&self, elem: u32) -> bool {
        (elem as usize) < self.sparse.len() && {
            let slot = self.sparse[elem as usize] as usize;
            slot < self.dense.len() && self.dense[slot] == elem
        }
    }

    /// Inserts `elem` in O(1); returns `true` if it was absent.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe`.
    pub fn insert(&mut self, elem: u32) -> bool {
        assert!(
            (elem as usize) < self.sparse.len(),
            "element {elem} outside universe {}",
            self.sparse.len()
        );
        if self.contains(elem) {
            return false;
        }
        self.sparse[elem as usize] = self.dense.len() as u32;
        self.dense.push(elem);
        true
    }

    /// Removes `elem` in O(1) (swap-remove); returns `true` if present.
    pub fn remove(&mut self, elem: u32) -> bool {
        if !self.contains(elem) {
            return false;
        }
        let slot = self.sparse[elem as usize] as usize;
        let last = *self.dense.last().expect("non-empty: contains() held");
        self.dense.swap_remove(slot);
        if slot < self.dense.len() {
            self.sparse[last as usize] = slot as u32;
        }
        true
    }

    /// Empties the set in O(1).
    pub fn clear(&mut self) {
        self.dense.clear();
    }

    /// Iterates present elements in insertion order (unordered values).
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, u32>> {
        self.dense.iter().copied()
    }

    /// The packed element slice (insertion order).
    pub fn as_slice(&self) -> &[u32] {
        &self.dense
    }
}

impl std::fmt::Debug for SparseSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains() {
        let mut s = SparseSet::new(10);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn contains_handles_stale_sparse_entries() {
        // The classic sparse-set trick: sparse[] may contain garbage for
        // absent elements; contains() must cross-check via dense[].
        let mut s = SparseSet::new(10);
        s.insert(5);
        s.clear();
        assert!(!s.contains(5)); // sparse[5] is stale but dense is empty
        s.insert(7);
        assert!(!s.contains(5)); // sparse[5]==0 points at dense[0]==7
        assert!(s.contains(7));
    }

    #[test]
    fn remove_swaps_last() {
        let mut s = SparseSet::new(10);
        for e in [1, 2, 3] {
            s.insert(e);
        }
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert!(s.contains(2));
        assert!(s.contains(3));
        assert_eq!(s.len(), 2);
        // removing the final element also works
        assert!(s.remove(3));
        assert!(s.remove(2));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut s = SparseSet::new(4);
        assert!(!s.remove(2));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        SparseSet::new(4).insert(4);
    }

    #[test]
    fn contains_out_of_universe_is_false() {
        let s = SparseSet::new(4);
        assert!(!s.contains(100));
    }

    #[test]
    fn iteration_in_insertion_order() {
        let mut s = SparseSet::new(100);
        for e in [42, 7, 99] {
            s.insert(e);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![42, 7, 99]);
        assert_eq!(s.as_slice(), &[42, 7, 99]);
    }

    #[test]
    fn clear_is_reusable() {
        let mut s = SparseSet::new(50);
        for round in 0..3u32 {
            s.insert(round);
            s.insert(round + 10);
            assert_eq!(s.len(), 2);
            s.clear();
            assert!(s.is_empty());
        }
    }

    #[test]
    fn debug_shows_elements() {
        let mut s = SparseSet::new(10);
        s.insert(9);
        assert_eq!(format!("{s:?}"), "{9}");
    }
}
