use crate::{kernels, next_set_bit_in, words_for, BitIter, WORD_BITS};

/// A fixed-capacity set of `u32` values stored as a bit vector.
///
/// This is the representation §5.1 of the paper chooses for the
/// per-node sets `R_v` and `T_v`: with the common case of fewer than 64
/// basic blocks a set is one or two machine words, and the
/// [`next_set_bit`](DenseBitSet::next_set_bit) primitive implements the
/// `bitset_next_set` function of Algorithm 3.
///
/// The capacity (the *universe* `0..len`) is fixed at construction; all
/// binary operations require both operands to share the same universe.
///
/// # Examples
///
/// ```
/// use fastlive_bitset::DenseBitSet;
///
/// let mut s = DenseBitSet::new(100);
/// assert!(s.insert(42));
/// assert!(!s.insert(42)); // already present
/// assert!(s.contains(42));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        DenseBitSet {
            words: vec![0; words_for(universe)],
            len: universe,
        }
    }

    /// Creates a set over `0..universe` containing the given elements.
    ///
    /// # Panics
    ///
    /// Panics if any element is `>= universe`.
    pub fn from_elems(universe: usize, elems: impl IntoIterator<Item = u32>) -> Self {
        let mut s = DenseBitSet::new(universe);
        for e in elems {
            s.insert(e);
        }
        s
    }

    /// The universe size (exclusive upper bound on elements).
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Number of elements in the set — 4-wide chunked popcount
    /// ([`kernels::popcount`]).
    pub fn len(&self) -> usize {
        kernels::popcount(&self.words)
    }

    /// Returns `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Inserts `elem`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe`.
    pub fn insert(&mut self, elem: u32) -> bool {
        assert!(
            (elem as usize) < self.len,
            "element {elem} outside universe {}",
            self.len
        );
        let (wi, mask) = (
            elem as usize / WORD_BITS,
            1u64 << (elem as usize % WORD_BITS),
        );
        let fresh = self.words[wi] & mask == 0;
        self.words[wi] |= mask;
        fresh
    }

    /// Removes `elem`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe`.
    pub fn remove(&mut self, elem: u32) -> bool {
        assert!(
            (elem as usize) < self.len,
            "element {elem} outside universe {}",
            self.len
        );
        let (wi, mask) = (
            elem as usize / WORD_BITS,
            1u64 << (elem as usize % WORD_BITS),
        );
        let present = self.words[wi] & mask != 0;
        self.words[wi] &= !mask;
        present
    }

    /// Membership test. Out-of-universe values are simply absent.
    pub fn contains(&self, elem: u32) -> bool {
        let (wi, bit) = (elem as usize / WORD_BITS, elem as usize % WORD_BITS);
        (elem as usize) < self.len && self.words[wi] & (1u64 << bit) != 0
    }

    /// Removes all elements, keeping the universe.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Position of the first set bit `>= from`, i.e. the paper's
    /// `bitset_next_set` (Algorithm 3). Returns `None` when exhausted where
    /// the paper returns `MAX_INT`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastlive_bitset::DenseBitSet;
    ///
    /// let s = DenseBitSet::from_elems(10, [2, 7]);
    /// assert_eq!(s.next_set_bit(0), Some(2));
    /// assert_eq!(s.next_set_bit(3), Some(7));
    /// assert_eq!(s.next_set_bit(8), None);
    /// ```
    pub fn next_set_bit(&self, from: u32) -> Option<u32> {
        next_set_bit_in(&self.words, self.len, from)
    }

    /// In-place union; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch in union");
        kernels::union_into(&mut self.words, &other.words)
    }

    /// In-place intersection; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch in intersection");
        kernels::intersect_into(&mut self.words, &other.words)
    }

    /// In-place set difference (`self \ other`); returns `true` if `self`
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch in difference");
        kernels::difference_into(&mut self.words, &other.words)
    }

    /// `self |= other ∩ [lo, hi]` (inclusive interval): the masked
    /// union the batch liveness assembly uses to splice a contiguous
    /// column range of another set in one word-parallel pass. Returns
    /// `true` if `self` changed; empty intervals are no-ops.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with_masked(&mut self, other: &DenseBitSet, lo: u32, hi: u32) -> bool {
        assert_eq!(
            self.len, other.len,
            "universe mismatch in union_with_masked"
        );
        kernels::union_masked(&mut self.words, &other.words, lo, hi, self.len)
    }

    /// Returns `true` if the intersection with `other` is non-empty. This
    /// is the `R_t ∩ uses(a) ≠ ∅` test at the heart of Algorithm 1 when
    /// uses are also kept as a bitset.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersects(&self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch in intersects");
        kernels::intersects(&self.words, &other.words)
    }

    /// Returns `true` if every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_subset_of(&self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch in subset test");
        kernels::is_subset(&self.words, &other.words)
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter::new(&self.words, self.len)
    }

    /// Heap memory used by the set, in bytes (for the §6.1 memory
    /// comparison).
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// The raw backing words (low bit of word 0 is element 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl std::fmt::Debug for DenseBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for DenseBitSet {
    /// Collects into a set whose universe is one past the maximum element
    /// (or empty universe for an empty iterator).
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let elems: Vec<u32> = iter.into_iter().collect();
        let universe = elems.iter().max().map_or(0, |&m| m as usize + 1);
        DenseBitSet::from_elems(universe, elems)
    }
}

impl Extend<u32> for DenseBitSet {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl<'a> IntoIterator for &'a DenseBitSet {
    type Item = u32;
    type IntoIter = BitIter<'a>;
    fn into_iter(self) -> BitIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseBitSet::new(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(129));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        DenseBitSet::new(8).insert(8);
    }

    #[test]
    fn contains_out_of_universe_is_false() {
        let s = DenseBitSet::new(8);
        assert!(!s.contains(1000));
    }

    #[test]
    fn next_set_bit_walks_words() {
        let s = DenseBitSet::from_elems(200, [0, 63, 64, 65, 190]);
        assert_eq!(s.next_set_bit(0), Some(0));
        assert_eq!(s.next_set_bit(1), Some(63));
        assert_eq!(s.next_set_bit(64), Some(64));
        assert_eq!(s.next_set_bit(66), Some(190));
        assert_eq!(s.next_set_bit(191), None);
        assert_eq!(s.next_set_bit(10_000), None);
    }

    #[test]
    fn next_set_bit_on_empty() {
        let s = DenseBitSet::new(0);
        assert_eq!(s.next_set_bit(0), None);
        let s = DenseBitSet::new(65);
        assert_eq!(s.next_set_bit(0), None);
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = DenseBitSet::from_elems(70, [1, 2, 65]);
        let b = DenseBitSet::from_elems(70, [2, 3, 69]);
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 65, 69]);
        assert!(!a.union_with(&b)); // idempotent

        let mut c = a.clone();
        assert!(c.intersect_with(&b));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![2, 3, 69]);

        let mut d = a.clone();
        assert!(d.difference_with(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 65]);
    }

    #[test]
    fn union_with_masked_clips_to_interval() {
        let src = DenseBitSet::from_elems(200, [0, 63, 64, 65, 190]);
        let mut dst = DenseBitSet::new(200);
        assert!(dst.union_with_masked(&src, 63, 65));
        assert_eq!(dst.iter().collect::<Vec<_>>(), vec![63, 64, 65]);
        assert!(!dst.union_with_masked(&src, 63, 65));
        assert!(dst.union_with_masked(&src, 66, u32::MAX));
        assert_eq!(dst.iter().collect::<Vec<_>>(), vec![63, 64, 65, 190]);
        assert!(!dst.union_with_masked(&src, 100, 50)); // empty interval
        let empty = DenseBitSet::new(0);
        let mut e2 = DenseBitSet::new(0);
        assert!(!e2.union_with_masked(&empty, 0, 10)); // zero universe
    }

    #[test]
    fn intersects_and_subset() {
        let a = DenseBitSet::from_elems(70, [1, 65]);
        let b = DenseBitSet::from_elems(70, [65]);
        let c = DenseBitSet::from_elems(70, [2]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(DenseBitSet::new(70).is_subset_of(&c));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let mut a = DenseBitSet::new(10);
        let b = DenseBitSet::new(11);
        a.union_with(&b);
    }

    #[test]
    fn debug_shows_elements() {
        let s = DenseBitSet::from_elems(10, [1, 4]);
        assert_eq!(format!("{s:?}"), "{1, 4}");
        let empty = DenseBitSet::new(10);
        assert_eq!(format!("{empty:?}"), "{}");
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: DenseBitSet = [5u32, 2, 9].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert!(s.contains(9));
        let e: DenseBitSet = std::iter::empty().collect();
        assert_eq!(e.universe(), 0);
    }

    #[test]
    fn clear_empties() {
        let mut s = DenseBitSet::from_elems(10, [1, 2]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 10);
    }

    #[test]
    fn heap_bytes_counts_words() {
        assert_eq!(DenseBitSet::new(64).heap_bytes(), 8);
        assert_eq!(DenseBitSet::new(65).heap_bytes(), 16);
        // ~36 blocks (the paper's average) needs "two machine words per
        // block" on 32-bit; one u64 word here.
        assert_eq!(DenseBitSet::new(36).heap_bytes(), 8);
    }
}
