//! Differential suite pinning the wide `u64×4` kernels bit-for-bit to
//! their retained `*_scalar` baselines.
//!
//! Two layers:
//!
//! * **Boundary-exhaustive sweeps** — every masked operation
//!   (`union_rows_masked`, `union_row_from_masked`, `union_with_masked`,
//!   `intersects_in_range`, `rows_intersect_in_range`) is run for every
//!   `(lo, hi)` pair drawn from the word-boundary offsets
//!   `{0, 1, 63, 64, 65, cols − 1, cols}`, including empty (`lo > hi`)
//!   and out-of-universe intervals, on randomized contents. The wide
//!   result (changed-flag *and* resulting words) must equal the scalar
//!   baseline's exactly.
//! * **Properties** — popcount (`BitMatrix::row_len`,
//!   `DenseBitSet::len`) equals the iterator count, and the unmasked
//!   wide kernels match their scalar twins on arbitrary lengths.

use fastlive_bitset::{kernels, BitMatrix};
use proptest::prelude::*;

/// Deterministic xorshift64 words, never all-zero state.
fn rng_words(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect()
}

/// A `rows × cols` matrix with xorshift contents (ghost bits cleared so
/// `from_words` accepts it).
fn rng_matrix(seed: u64, rows: usize, cols: usize) -> BitMatrix {
    let wpr = cols.div_ceil(64);
    let mut words = rng_words(seed, rows * wpr);
    if !cols.is_multiple_of(64) {
        let tail = !0u64 >> (64 - cols % 64);
        for r in 0..rows {
            words[r * wpr + wpr - 1] &= tail;
        }
    }
    BitMatrix::from_words(rows, cols, words).expect("ghost bits cleared")
}

/// The word-boundary offsets of the sweep: both sides of the first and
/// second word boundaries plus both ends of the universe. Values may
/// exceed `cols` on purpose — the kernels must treat those as clamped
/// or empty, exactly like the scalar baselines.
fn boundary_offsets(cols: usize) -> Vec<u32> {
    let mut offs = vec![0u32, 1, 63, 64, 65, cols as u32 - 1, cols as u32];
    offs.retain(|&o| o <= cols as u32);
    offs.dedup();
    offs
}

/// Universe sizes crossing 1, 2 and 3+ words, including exact word
/// multiples and both neighbors.
const COLS_SWEEP: [usize; 8] = [1, 63, 64, 65, 128, 129, 192, 200];

#[test]
fn masked_matrix_ops_match_scalar_across_boundaries() {
    for cols in COLS_SWEEP {
        let offs = boundary_offsets(cols);
        for seed in 1..4u64 {
            let m0 = rng_matrix(seed.wrapping_mul(0x9e37_79b9), 4, cols);
            let other = rng_matrix(seed.wrapping_mul(0x51ab_3c7d), 4, cols);
            for &lo in &offs {
                for &hi in &offs {
                    // union_rows_masked: wide on the matrix, scalar on
                    // packed copies of the same two rows.
                    let mut m = m0.clone();
                    let mut d: Vec<u64> = m0.row_words(0).to_vec();
                    let s: Vec<u64> = m0.row_words(1).to_vec();
                    let wide = m.union_rows_masked(0, 1, lo, hi);
                    let scal = kernels::union_masked_scalar(&mut d, &s, lo, hi, cols);
                    assert_eq!(wide, scal, "union_rows_masked cols={cols} [{lo},{hi}]");
                    assert_eq!(m.row_words(0), &d[..], "cols={cols} [{lo},{hi}]");

                    // union_row_from_masked against the cross-matrix row.
                    let mut m = m0.clone();
                    let mut d: Vec<u64> = m0.row_words(2).to_vec();
                    let s: Vec<u64> = other.row_words(3).to_vec();
                    let wide = m.union_row_from_masked(2, &other, 3, lo, hi);
                    let scal = kernels::union_masked_scalar(&mut d, &s, lo, hi, cols);
                    assert_eq!(wide, scal, "union_row_from_masked cols={cols} [{lo},{hi}]");
                    assert_eq!(m.row_words(2), &d[..], "cols={cols} [{lo},{hi}]");

                    // intersects_in_range vs the scalar range probe.
                    assert_eq!(
                        m0.intersects_in_range(1, lo, hi),
                        kernels::range_intersects_scalar(m0.row_words(1), lo, hi, cols),
                        "intersects_in_range cols={cols} [{lo},{hi}]"
                    );

                    // rows_intersect_in_range (the fused query kernel)
                    // vs the scalar two-row probe.
                    assert_eq!(
                        m0.rows_intersect_in_range(0, &other, 1, lo, hi),
                        kernels::range_intersects2_scalar(
                            m0.row_words(0),
                            other.row_words(1),
                            lo,
                            hi,
                            cols
                        ),
                        "rows_intersect_in_range cols={cols} [{lo},{hi}]"
                    );
                }
            }
        }
    }
}

#[test]
fn dense_union_with_masked_matches_scalar_across_boundaries() {
    for cols in COLS_SWEEP {
        let offs = boundary_offsets(cols);
        for seed in 1..4u64 {
            let m = rng_matrix(seed.wrapping_mul(0xc2b2_ae35), 2, cols);
            let base = m.row_to_set(0);
            let src = m.row_to_set(1);
            for &lo in &offs {
                for &hi in &offs {
                    let mut wide = base.clone();
                    let changed_wide = wide.union_with_masked(&src, lo, hi);
                    let mut scal: Vec<u64> = base.as_words().to_vec();
                    let changed_scal =
                        kernels::union_masked_scalar(&mut scal, src.as_words(), lo, hi, cols);
                    assert_eq!(
                        changed_wide, changed_scal,
                        "union_with_masked cols={cols} [{lo},{hi}]"
                    );
                    assert_eq!(wide.as_words(), &scal[..], "cols={cols} [{lo},{hi}]");
                }
            }
        }
    }
}

/// Word vectors of length 0..=20 with interesting values mixed in.
fn word_vecs() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (any::<u8>(), any::<u64>()).prop_map(|(k, w)| match k % 4 {
            0 => 0,
            1 => !0,
            2 => 1u64 << 63,
            _ => w,
        }),
        0..21,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite (a): the 4-wide popcount behind `BitMatrix::row_len`
    /// and `DenseBitSet::len` equals the iterator count.
    #[test]
    fn popcount_equals_iterator_count(words in word_vecs()) {
        prop_assert_eq!(kernels::popcount(&words), kernels::popcount_scalar(&words));
        let cols = (words.len() * 64).max(1);
        let m = BitMatrix::from_words(1, cols, if words.is_empty() {
            vec![0]
        } else {
            words.clone()
        }).expect("word-multiple universe has no ghost bits");
        prop_assert_eq!(m.row_len(0), m.row_iter(0).count());
        let set = m.row_to_set(0);
        prop_assert_eq!(set.len(), set.iter().count());
        prop_assert_eq!(set.len(), m.row_len(0));
    }

    /// The unmasked wide kernels match their scalar twins on arbitrary
    /// lengths and contents (flag and words).
    #[test]
    fn unmasked_kernels_match_scalar(dst in word_vecs(), src in word_vecs()) {
        let mut a = dst.clone();
        let mut b = dst.clone();
        prop_assert_eq!(
            kernels::union_into(&mut a, &src),
            kernels::union_into_scalar(&mut b, &src)
        );
        prop_assert_eq!(&a, &b);

        let mut a = dst.clone();
        let mut b = dst.clone();
        prop_assert_eq!(
            kernels::intersect_into(&mut a, &src),
            kernels::intersect_into_scalar(&mut b, &src)
        );
        prop_assert_eq!(&a, &b);

        let mut a = dst.clone();
        let mut b = dst.clone();
        prop_assert_eq!(
            kernels::difference_into(&mut a, &src),
            kernels::difference_into_scalar(&mut b, &src)
        );
        prop_assert_eq!(&a, &b);

        prop_assert_eq!(
            kernels::intersects(&dst, &src),
            kernels::intersects_scalar(&dst, &src)
        );
        prop_assert_eq!(
            kernels::is_subset(&dst, &src),
            kernels::is_subset_scalar(&dst, &src)
        );
    }

    /// The masked union and the two range probes match their scalar
    /// twins on arbitrary intervals (not only boundary offsets).
    #[test]
    fn masked_kernels_match_scalar(
        words in proptest::collection::vec(any::<u64>(), 1..9),
        other in proptest::collection::vec(any::<u64>(), 1..9),
        lo in 0u32..600,
        hi in 0u32..600,
    ) {
        let n = words.len().min(other.len());
        let (words, other) = (&words[..n], &other[..n]);
        let len = n * 64;
        let mut a = words.to_vec();
        let mut b = words.to_vec();
        prop_assert_eq!(
            kernels::union_masked(&mut a, other, lo, hi, len),
            kernels::union_masked_scalar(&mut b, other, lo, hi, len)
        );
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            kernels::range_intersects(words, lo, hi, len),
            kernels::range_intersects_scalar(words, lo, hi, len)
        );
        prop_assert_eq!(
            kernels::range_intersects2(words, other, lo, hi, len),
            kernels::range_intersects2_scalar(words, other, lo, hi, len)
        );
    }
}
