//! Graphviz (`.dot`) export of control-flow graphs.
//!
//! The paper communicates its concepts through small CFG drawings (Figures
//! 1–3). This module regenerates such drawings from any [`Cfg`]: plain
//! digraphs, generated workloads, or IR functions. Edge styling hooks let
//! callers render DFS edge classes the way the paper does (back edges
//! dashed, cf. §2.1).
//!
//! # Examples
//!
//! ```
//! use fastlive_graph::{dot, DiGraph};
//!
//! let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2), (2, 1)]);
//! let rendered = dot::render(&g, "loop", &dot::Style::default());
//! assert!(rendered.contains("digraph loop"));
//! assert!(rendered.contains("n1 -> n2"));
//! ```

use std::fmt::Write as _;

use crate::{Cfg, NodeId};

/// Styling hooks for [`render`].
///
/// Each hook receives graph positions and returns the raw Graphviz attribute
/// text (without brackets); return an empty string for defaults.
pub struct Style<'a> {
    /// Label for a node; defaults to the node id.
    pub node_label: Box<dyn Fn(NodeId) -> String + 'a>,
    /// Extra attributes for a node (e.g. `shape=doublecircle`).
    pub node_attrs: Box<dyn Fn(NodeId) -> String + 'a>,
    /// Extra attributes for the `i`-th outgoing edge of `u` (e.g.
    /// `style=dashed` for back edges).
    pub edge_attrs: Box<dyn Fn(NodeId, usize, NodeId) -> String + 'a>,
}

impl Default for Style<'_> {
    fn default() -> Self {
        Style {
            node_label: Box::new(|n| n.to_string()),
            node_attrs: Box::new(|_| String::new()),
            edge_attrs: Box::new(|_, _, _| String::new()),
        }
    }
}

impl std::fmt::Debug for Style<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Style").finish_non_exhaustive()
    }
}

/// Renders `g` as a Graphviz `digraph` named `name`.
///
/// Node ids are emitted as `n0`, `n1`, ...; the entry node gets a bold
/// border so drawings match the paper's convention of a distinguished root.
///
/// # Examples
///
/// ```
/// use fastlive_graph::{dot, DiGraph};
///
/// let g = DiGraph::from_edges(2, 0, &[(0, 1)]);
/// let s = dot::render(&g, "tiny", &dot::Style::default());
/// assert!(s.starts_with("digraph tiny {"));
/// ```
pub fn render<G: Cfg>(g: &G, name: &str, style: &Style<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  node [shape=circle];");
    for n in 0..g.num_nodes() as NodeId {
        let label = (style.node_label)(n);
        let mut attrs = format!("label=\"{}\"", escape(&label));
        if n == g.entry() {
            attrs.push_str(", penwidth=2");
        }
        let extra = (style.node_attrs)(n);
        if !extra.is_empty() {
            let _ = write!(attrs, ", {extra}");
        }
        let _ = writeln!(out, "  n{n} [{attrs}];");
    }
    for u in 0..g.num_nodes() as NodeId {
        for (i, &v) in g.succs(u).iter().enumerate() {
            let extra = (style.edge_attrs)(u, i, v);
            if extra.is_empty() {
                let _ = writeln!(out, "  n{u} -> n{v};");
            } else {
                let _ = writeln!(out, "  n{u} -> n{v} [{extra}];");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    #[test]
    fn renders_nodes_and_edges() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        let s = render(&g, "g", &Style::default());
        assert!(s.contains("n0 ["));
        assert!(s.contains("n0 -> n1;"));
        assert!(s.contains("n1 -> n2;"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn entry_node_is_bold() {
        let g = DiGraph::new(2, 1);
        let s = render(&g, "g", &Style::default());
        assert!(s.contains("n1 [label=\"1\", penwidth=2];"));
        assert!(!s.contains("n0 [label=\"0\", penwidth=2];"));
    }

    #[test]
    fn custom_styles_are_applied() {
        let g = DiGraph::from_edges(2, 0, &[(0, 1), (0, 1)]);
        let style = Style {
            node_label: Box::new(|n| format!("B{n}")),
            node_attrs: Box::new(|_| "color=red".to_string()),
            edge_attrs: Box::new(|_, i, _| {
                if i == 1 {
                    "style=dashed".into()
                } else {
                    String::new()
                }
            }),
        };
        let s = render(&g, "g", &style);
        assert!(s.contains("label=\"B0\""));
        assert!(s.contains("color=red"));
        // Only the second parallel edge is dashed.
        assert!(s.contains("n0 -> n1;"));
        assert!(s.contains("n0 -> n1 [style=dashed];"));
    }

    #[test]
    fn labels_are_escaped() {
        let g = DiGraph::new(1, 0);
        let style = Style {
            node_label: Box::new(|_| "a\"b".to_string()),
            ..Style::default()
        };
        let s = render(&g, "g", &style);
        assert!(s.contains("a\\\"b"));
    }
}
