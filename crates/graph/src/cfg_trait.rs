use crate::NodeId;

/// A directed control-flow graph with a distinguished entry node.
///
/// This is the interface required by every structural analysis in the
/// `fastlive` workspace (depth-first search, dominators, the liveness
/// precomputation). It matches the paper's model of §2.1: a directed graph
/// `G = (V, E, r)` where `r` has a distinguished role (the analyses assume
/// nothing else about it; `r` may have incoming edges, although classical
/// CFGs do not produce any).
///
/// # Contract
///
/// * Nodes are the dense indices `0..num_nodes()`.
/// * `succs`/`preds` must be consistent: `v ∈ succs(u)` with multiplicity
///   `k` iff `u ∈ preds(v)` with multiplicity `k`. Parallel edges and
///   self-loops are allowed (a conditional branch may target the same block
///   twice; a single-block loop is a self-loop).
/// * The graph must not change while an analysis result computed from it is
///   in use; analyses copy nothing and index side tables by [`NodeId`].
///
/// # Examples
///
/// ```
/// use fastlive_graph::{Cfg, DiGraph};
///
/// let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2), (2, 1)]);
/// assert_eq!(g.entry(), 0);
/// assert_eq!(g.num_edges(), 3);
/// assert!(g.succs(2).contains(&1));
/// ```
pub trait Cfg {
    /// Number of nodes; valid node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// The entry node `r` from which every reachable node is explored.
    fn entry(&self) -> NodeId;

    /// Successor nodes of `n`, in a deterministic order.
    ///
    /// For an IR function this is the order of the terminator's targets,
    /// which makes depth-first search (and everything derived from it)
    /// deterministic.
    fn succs(&self, n: NodeId) -> &[NodeId];

    /// Predecessor nodes of `n`, in a deterministic order.
    fn preds(&self, n: NodeId) -> &[NodeId];

    /// Total number of edges (counting parallel edges separately).
    fn num_edges(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|n| self.succs(n).len())
            .sum()
    }
}

impl<T: Cfg + ?Sized> Cfg for &T {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn entry(&self) -> NodeId {
        (**self).entry()
    }
    fn succs(&self, n: NodeId) -> &[NodeId] {
        (**self).succs(n)
    }
    fn preds(&self, n: NodeId) -> &[NodeId] {
        (**self).preds(n)
    }
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }
}
