use crate::{Cfg, NodeId};

/// A plain adjacency-list directed graph implementing [`Cfg`].
///
/// `DiGraph` is the workhorse for unit tests, the workload generators and
/// the reconstruction of the paper's Figure 3. It stores both forward and
/// reverse adjacency so that [`Cfg::preds`] is O(1).
///
/// # Examples
///
/// Build the paper's Figure 3 CFG (nodes renumbered 0-based) and inspect it:
///
/// ```
/// use fastlive_graph::{Cfg, DiGraph};
///
/// let mut g = DiGraph::new(4, 0);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 1); // a loop back edge
/// g.add_edge(1, 3);
/// assert_eq!(g.succs(1), &[2, 3]);
/// assert_eq!(g.preds(1), &[0, 2]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    entry: NodeId,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes, no edges, and entry node `entry`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `entry >= n`.
    pub fn new(n: usize, entry: NodeId) -> Self {
        assert!(n > 0, "a CFG needs at least one node");
        assert!(
            (entry as usize) < n,
            "entry {entry} out of range for {n} nodes"
        );
        DiGraph {
            entry,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Creates a graph with `n` nodes and the given edge list.
    ///
    /// Edges keep their multiplicity and their order per source node.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any endpoint is out of range.
    pub fn from_edges(n: usize, entry: NodeId, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = DiGraph::new(n, entry);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the directed edge `u -> v`. Parallel edges and self-loops are
    /// allowed.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.num_nodes(),
            "edge source {u} out of range"
        );
        assert!(
            (v as usize) < self.num_nodes(),
            "edge target {v} out of range"
        );
        self.succs[u as usize].push(v);
        self.preds[v as usize].push(u);
        self.num_edges += 1;
    }

    /// Returns `true` if at least one edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.succs[u as usize].contains(&v)
    }

    /// Appends a fresh node with no edges and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        (self.succs.len() - 1) as NodeId
    }

    /// Returns the graph with every edge reversed and the same entry node.
    ///
    /// Useful for backward analyses over the CFG.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            entry: self.entry,
            succs: self.preds.clone(),
            preds: self.succs.clone(),
            num_edges: self.num_edges,
        }
    }

    /// Iterates over all edges `(u, v)` in source-major order, including
    /// parallel duplicates.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u as NodeId, v)))
    }
}

impl Cfg for DiGraph {
    fn num_nodes(&self) -> usize {
        self.succs.len()
    }
    fn entry(&self) -> NodeId {
        self.entry
    }
    fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n as usize]
    }
    fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n as usize]
    }
    fn num_edges(&self) -> usize {
        self.num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = DiGraph::new(3, 0);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert!(g.succs(0).is_empty());
        assert!(g.preds(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = DiGraph::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_entry_rejected() {
        let _ = DiGraph::new(2, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_rejected() {
        let mut g = DiGraph::new(2, 0);
        g.add_edge(0, 7);
    }

    #[test]
    fn preds_and_succs_are_mirrors() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 1)]);
        for (u, v) in g.edges() {
            assert!(g.succs(u).contains(&v));
            assert!(g.preds(v).contains(&u));
        }
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn parallel_edges_keep_multiplicity() {
        let g = DiGraph::from_edges(2, 0, &[(0, 1), (0, 1)]);
        assert_eq!(g.succs(0), &[1, 1]);
        assert_eq!(g.preds(1), &[0, 0]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loop_allowed() {
        let g = DiGraph::from_edges(2, 0, &[(0, 1), (1, 1)]);
        assert_eq!(g.succs(1), &[1]);
        assert_eq!(g.preds(1), &[0, 1]);
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        let r = g.reversed();
        assert_eq!(r.succs(2), &[1]);
        assert_eq!(r.succs(1), &[0]);
        assert_eq!(r.num_edges(), 2);
        assert_eq!(r.entry(), 0);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = DiGraph::new(1, 0);
        let n = g.add_node();
        assert_eq!(n, 1);
        g.add_edge(0, n);
        assert_eq!(g.succs(0), &[1]);
    }

    #[test]
    fn edges_iterates_in_source_major_order() {
        let g = DiGraph::from_edges(3, 0, &[(1, 2), (0, 1), (0, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn cfg_trait_for_references() {
        fn count<G: Cfg>(g: G) -> usize {
            g.num_edges()
        }
        let g = DiGraph::from_edges(2, 0, &[(0, 1)]);
        assert_eq!(count(&g), 1);
        assert_eq!(count(&g), 1);
    }
}
