//! Control-flow-graph abstractions for the `fastlive` liveness library.
//!
//! Everything in the paper — depth-first search trees, dominators, the
//! reduced-reachability sets `R_v` and the back-edge-target sets `T_v` —
//! depends only on the *structure* of the control-flow graph, never on the
//! instructions inside the blocks. This crate captures that structure behind
//! the [`Cfg`] trait so the analyses in `fastlive-cfg` and the liveness
//! checker in `fastlive-core` can run unchanged on:
//!
//! * [`DiGraph`], a plain adjacency-list digraph used by tests, the workload
//!   generators, and the paper's Figure 3 example, and
//! * `fastlive_ir::Function`, the SSA intermediate representation.
//!
//! The crate also provides [Graphviz export](dot) used to regenerate the
//! paper's figures.
//!
//! # Examples
//!
//! ```
//! use fastlive_graph::{Cfg, DiGraph};
//!
//! // The diamond from Figure 2 of the paper: entry, two branches, a join.
//! let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.succs(0), &[1, 2]);
//! assert_eq!(g.preds(3), &[1, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg_trait;
mod digraph;
pub mod dot;

pub use cfg_trait::Cfg;
pub use digraph::DiGraph;

/// Identifier of a CFG node. Nodes of a [`Cfg`] are dense indices
/// `0..num_nodes()`; analyses index their side tables directly with this.
pub type NodeId = u32;

/// Sentinel used by analyses for "no node" (e.g. the DFS parent of the root).
pub const NO_NODE: NodeId = u32::MAX;
