//! Fast liveness checking for SSA-form programs — the algorithm of
//! Boissinot, Hack, Grund, Dupont de Dinechin & Rastello (CGO 2008).
//!
//! # The idea
//!
//! Instead of solving backward data-flow equations for live *sets*, the
//! paper answers point queries — *"is variable `a` live-in/live-out at
//! block `q`?"* — from two ingredients:
//!
//! 1. A **variable-independent precomputation** over the CFG: for every
//!    block `v`, the set `R_v` of blocks reachable without traversing
//!    DFS back edges (Definition 4), and the set `T_v` of back-edge
//!    targets relevant to paths leaving `v` (Definition 5). Both are
//!    bitsets indexed by a dominance-tree preorder numbering (§5.1).
//! 2. The **def-use chain** of the queried variable, read at query time.
//!
//! A live-in query (Algorithm 1/3) intersects `T_q` with the dominance
//! subtree of `def(a)` — a contiguous bit interval thanks to the
//! numbering — and reports liveness iff some use of `a` is
//! reduced-reachable from a surviving candidate. Because step 1 never
//! looks at variables, the precomputation survives *all* program edits
//! except CFG changes: insert instructions, clone values, delete uses —
//! every query stays exact with zero recomputation. That is the
//! property that makes the approach attractive for passes like SSA
//! destruction, register allocation and JIT pipelines.
//!
//! # Entry points
//!
//! Most applications should reach this crate through the
//! [`fastlive` facade](https://docs.rs/fastlive) (the workspace root
//! crate): `Fastlive::builder()` plus its typed `Query` layer wrap
//! every entry point below — and the engine, batching and persistence
//! tiers — behind one front door. The surfaces here remain the
//! building blocks:
//!
//! * [`LivenessChecker`] — the graph-level engine (any
//!   [`Cfg`](fastlive_graph::Cfg)): precomputation + Algorithm 1/2/3
//!   queries with subtree skipping and the Theorem 2 reducible fast
//!   path.
//! * [`FunctionLiveness`] — the same engine bound to an
//!   [`fastlive_ir::Function`], reading live def-use chains, plus the
//!   program-point queries
//!   ([`is_live_at`](FunctionLiveness::is_live_at),
//!   [`is_live_after_def`](FunctionLiveness::is_live_after_def)) that
//!   the Budimlić interference test of SSA destruction needs.
//! * [`LivenessProvider`] — the workspace-wide query trait: block and
//!   point queries behind one interface, with the point decomposition
//!   as a default implementation, so the checker, the batch snapshot
//!   and the `fastlive-dataflow` baselines are interchangeable to
//!   clients like SSA destruction.
//! * [`BatchLiveness`] — the dense consumer's entry point: live-in and
//!   live-out bit-matrix rows for **all** blocks at once, derived from
//!   the same precomputation by word-level row unions instead of
//!   per-query candidate scans
//!   ([`FunctionLiveness::batch`] binds it to a function).
//! * [`reference::ReferenceChecker`] — a deliberately literal
//!   implementation of Definitions 4/5 and Algorithms 1/2, used as an
//!   executable specification in tests.
//! * [`verify_strict_ssa`] — checks the paper's §2.2 prerequisite.
//!
//! # Examples
//!
//! ```
//! use fastlive_core::LivenessChecker;
//! use fastlive_graph::DiGraph;
//!
//! // The paper's Figure 3 (nodes 0-based). One precomputation ...
//! let g = DiGraph::from_edges(
//!     11,
//!     0,
//!     &[
//!         (0, 1), (1, 2), (1, 10), (2, 3), (2, 7), (3, 4), (4, 5),
//!         (5, 6), (5, 4), (6, 1), (7, 8), (8, 9), (8, 5), (9, 7), (9, 10),
//!     ],
//! );
//! let live = LivenessChecker::compute(&g);
//!
//! // ... answers every query of §3.2 (paper node k is k-1 here):
//! assert!(live.is_live_in(2, &[8], 9));  // x live-in at 10? yes
//! assert!(live.is_live_in(2, &[4], 9));  // y live-in at 10? yes
//! assert!(!live.is_live_in(1, &[3], 9)); // w live at 10? no
//! assert!(!live.is_live_in(2, &[8], 3)); // x live-in at 4? no
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod checker;
mod error;
mod function_liveness;
mod loop_forest_check;
mod nullness;
mod precompute;
mod provider;
pub mod reference;
mod sorted;
mod verify;

pub use batch::{BatchError, BatchLiveness};
pub use checker::{Candidates, LivenessChecker};
pub use error::AnalysisError;
pub use function_liveness::FunctionLiveness;
pub use loop_forest_check::LoopForestChecker;
pub use nullness::{Nullness, NullnessArtifact, NullnessFacts};
pub use precompute::Precomputation;
pub use provider::{LivenessProvider, PointError};
pub use sorted::SortedLivenessChecker;
pub use verify::{verify_strict_ssa, SsaError};
