//! A deliberately literal implementation of the paper, used as an
//! executable specification.
//!
//! [`ReferenceChecker`] computes `R_v` (Definition 4) by per-node graph
//! search and `T_q` (Definition 5) by the fixpoint
//! `T_q = ⋃_i T^i_q` exactly as written — including the per-level
//! filter `t' ∈ V \ R_t` — and answers queries with Algorithm 1 and
//! Algorithm 2 as plain set operations. No bitsets, no numbering
//! tricks, no subtree skipping.
//!
//! The production engine ([`LivenessChecker`](crate::LivenessChecker))
//! must agree with this one on every query; the test suites of this
//! crate and of `fastlive-dataflow` check that, along with agreement
//! against a path-search oracle that implements Definition 2 directly.

use std::collections::BTreeSet;

use fastlive_cfg::{DfsTree, DomTree, EdgeClass};
use fastlive_graph::{Cfg, NodeId};

/// The executable-specification checker. Quadratic memory, unoptimized
/// queries; use [`LivenessChecker`](crate::LivenessChecker) for real
/// workloads.
#[derive(Clone, Debug)]
pub struct ReferenceChecker {
    dfs: DfsTree,
    dom: DomTree,
    /// `r[v]` = `R_v` as a sorted node set (reachable nodes only).
    r: Vec<BTreeSet<NodeId>>,
    /// `t[q]` = `T_q` per Definition 5.
    t: Vec<BTreeSet<NodeId>>,
    is_back_target: Vec<bool>,
}

impl ReferenceChecker {
    /// Computes `R` and `T` for every node of `g`.
    pub fn compute<G: Cfg>(g: &G) -> Self {
        let dfs = DfsTree::compute(g);
        let dom = DomTree::compute(g, &dfs);
        let n = g.num_nodes();

        // R_v by forward search over the reduced graph, per node.
        let mut r: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        for v in 0..n as NodeId {
            if !dfs.is_reachable(v) {
                continue;
            }
            let mut stack = vec![v];
            r[v as usize].insert(v);
            while let Some(x) = stack.pop() {
                for (i, &w) in g.succs(x).iter().enumerate() {
                    if dfs.edge_class_at(x, i) != EdgeClass::Back && r[v as usize].insert(w) {
                        stack.push(w);
                    }
                }
            }
        }

        // T_q per Definition 5: start from {q}; for each member t, add
        // the targets t' of back edges with source in R_t and t' ∉ R_t.
        let back_edges: Vec<(NodeId, NodeId)> = dfs.back_edges().to_vec();
        let mut t: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        for q in 0..n as NodeId {
            if !dfs.is_reachable(q) {
                continue;
            }
            let set = &mut t[q as usize];
            set.insert(q);
            let mut work = vec![q];
            while let Some(x) = work.pop() {
                for &(s2, t2) in &back_edges {
                    if r[x as usize].contains(&s2) && !r[x as usize].contains(&t2) && set.insert(t2)
                    {
                        work.push(t2);
                    }
                }
            }
        }

        let mut is_back_target = vec![false; n];
        for &(_, tgt) in dfs.back_edges() {
            is_back_target[tgt as usize] = true;
        }

        ReferenceChecker {
            dfs,
            dom,
            r,
            t,
            is_back_target,
        }
    }

    /// `R_q` as defined (Definition 4).
    pub fn r_set(&self, v: NodeId) -> &BTreeSet<NodeId> {
        &self.r[v as usize]
    }

    /// `T_q` as defined (Definition 5).
    pub fn t_set(&self, q: NodeId) -> &BTreeSet<NodeId> {
        &self.t[q as usize]
    }

    /// Algorithm 1, verbatim: build `T_(q,a) = T_q ∩ sdom(def)` and test
    /// `R_t ∩ uses ≠ ∅` for each member.
    pub fn is_live_in(&self, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
        if !self.dom.is_reachable(def) || !self.dom.is_reachable(q) {
            return false;
        }
        let t_qa: Vec<NodeId> = self.t[q as usize]
            .iter()
            .copied()
            .filter(|&t| self.dom.strictly_dominates(def, t))
            .collect();
        for t in t_qa {
            if uses.iter().any(|u| self.r[t as usize].contains(u)) {
                return true;
            }
        }
        false
    }

    /// Algorithm 2, verbatim, with its two special cases.
    pub fn is_live_out(&self, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
        if !self.dom.is_reachable(def) || !self.dom.is_reachable(q) {
            return false;
        }
        if def == q {
            return uses.iter().any(|&u| u != q);
        }
        if !self.dom.strictly_dominates(def, q) {
            return false;
        }
        for &t in &self.t[q as usize] {
            if !self.dom.strictly_dominates(def, t) {
                continue;
            }
            let drop_q = t == q && !self.is_back_target[q as usize];
            if uses
                .iter()
                .any(|&u| !(drop_q && u == q) && self.r[t as usize].contains(&u))
            {
                return true;
            }
        }
        false
    }

    /// The DFS tree (shared with diagnostics).
    pub fn dfs(&self) -> &DfsTree {
        &self.dfs
    }

    /// The dominator tree.
    pub fn dom(&self) -> &DomTree {
        &self.dom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LivenessChecker;
    use fastlive_graph::DiGraph;

    fn figure3() -> DiGraph {
        DiGraph::from_edges(
            11,
            0,
            &[
                (0, 1),
                (1, 2),
                (1, 10),
                (2, 3),
                (2, 7),
                (3, 4),
                (4, 5),
                (5, 6),
                (5, 4),
                (6, 1),
                (7, 8),
                (8, 9),
                (8, 5),
                (9, 7),
                (9, 10),
            ],
        )
    }

    #[test]
    fn definition5_on_figure3() {
        let r = ReferenceChecker::compute(&figure3());
        let t9: Vec<NodeId> = r.t_set(9).iter().copied().collect();
        assert_eq!(t9, vec![1, 4, 7, 9]);
        // T of (paper) 4: only {4, 2} 1-based -> {3, 1} 0-based: the
        // header 8 (paper) is kept out by the per-level filter.
        let t3: Vec<NodeId> = r.t_set(3).iter().copied().collect();
        assert_eq!(t3, vec![1, 3]);
    }

    #[test]
    fn narrated_queries_match_paper() {
        let r = ReferenceChecker::compute(&figure3());
        assert!(r.is_live_in(2, &[8], 9)); // x live-in at 10
        assert!(r.is_live_in(2, &[4], 9)); // y live-in at 10
        assert!(!r.is_live_in(1, &[3], 9)); // w not live at 10
        assert!(!r.is_live_in(2, &[8], 3)); // x not live-in at 4
    }

    /// Pseudo-random graphs: the production checker and the reference
    /// checker must agree on every (def, use, q) triple.
    #[test]
    fn agrees_with_bitset_checker_on_random_graphs() {
        let mut state = 0x853c49e6748fea9bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..120 {
            let n = 2 + (next() % 10) as usize;
            let mut g = DiGraph::new(n, 0);
            for v in 1..n as NodeId {
                g.add_edge((next() % v as u64) as NodeId, v);
            }
            for _ in 0..(next() % (2 * n as u64 + 1)) {
                g.add_edge((next() % n as u64) as NodeId, (next() % n as u64) as NodeId);
            }
            let reference = ReferenceChecker::compute(&g);
            let bitset = LivenessChecker::compute(&g);
            for def in 0..n as NodeId {
                for u in 0..n as NodeId {
                    for q in 0..n as NodeId {
                        let uses = [u];
                        assert_eq!(
                            reference.is_live_in(def, &uses, q),
                            bitset.is_live_in(def, &uses, q),
                            "case {case}: live-in(def={def}, use={u}, q={q})\n{g:?}"
                        );
                        assert_eq!(
                            reference.is_live_out(def, &uses, q),
                            bitset.is_live_out(def, &uses, q),
                            "case {case}: live-out(def={def}, use={u}, q={q})\n{g:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn t_sets_differ_only_by_redundant_elements() {
        // The bitset engine's globally-filtered T may differ from
        // Definition 5, but only by elements t with t ∈ R_q (redundant
        // for queries) in either direction.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..80 {
            let n = 2 + (next() % 10) as usize;
            let mut g = DiGraph::new(n, 0);
            for v in 1..n as NodeId {
                g.add_edge((next() % v as u64) as NodeId, v);
            }
            for _ in 0..(next() % (2 * n as u64 + 1)) {
                g.add_edge((next() % n as u64) as NodeId, (next() % n as u64) as NodeId);
            }
            let reference = ReferenceChecker::compute(&g);
            let bitset = LivenessChecker::compute(&g);
            for q in 0..n as NodeId {
                if !reference.dom().is_reachable(q) {
                    continue;
                }
                let def_t = reference.t_set(q);
                let eng_t: BTreeSet<NodeId> = bitset.t_set(q).into_iter().collect();
                // Anything Definition 5 contains but the engine dropped
                // must be reduced-reachable from q (then the t = q
                // iteration subsumes its R-set, so queries cannot
                // change). The engine may also keep *extra* elements the
                // propagation found; their soundness is covered by the
                // exhaustive query-agreement test above.
                for x in def_t.difference(&eng_t) {
                    assert!(
                        reference.r_set(q).contains(x),
                        "engine dropped a non-redundant T element at q={q}: {x} \
                         (definition {def_t:?} vs engine {eng_t:?})"
                    );
                }
            }
        }
    }
}
