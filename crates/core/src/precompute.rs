//! The variable-independent precomputation of §5.2: reduced
//! reachability `R_v` (Definition 4) and relevant back-edge targets
//! `T_v` (Definition 5), both as bit matrices indexed by the
//! dominance-tree preorder numbering of §5.1.
//!
//! # How the sets are computed
//!
//! * **`R_v`** — one pass over the DFS postorder. For every non-back
//!   edge `(v, w)`: `R_v ⊇ R_w` (postorder is a reverse topological
//!   order of the acyclic reduced graph), plus `v ∈ R_v`.
//! * **`T_v`** — three phases, following §5.2:
//!   1. For every back-edge *target* `t` in increasing DFS-preorder
//!      order, Equation (1): `T_t = {t} ∪ ⋃_{t' ∈ T↑_t} T_{t'}`, where
//!      `T↑_t` holds the targets `t' ∉ R_t` of back edges whose source
//!      is in `R_t`. Theorem 3 guarantees the preorder makes every
//!      `T_{t'}` available.
//!   2. Every back-edge *source* `s` seeds its propagation value with
//!      the `T_t` of its own back-edge targets.
//!   3. The seeds are propagated through the reduced graph in postorder
//!      (like `R_v`), and `v` is added to each `T_v`.
//!
//! # A deliberate deviation from the paper's text
//!
//! Read literally, phase 3 produces a *superset* of Definition 5: it
//! keeps `T_t` contributions of back edges whose target is itself
//! reduced-reachable from `v` (the per-level filter `t' ∉ R_v` of
//! Definition 5 cannot be applied by plain forward propagation).
//! Such extra elements are harmless for correctness (for any extra `t`,
//! `t ∈ R_v` implies `R_t ⊆ R_v`, so the `t = v` iteration of
//! Algorithm 1 already finds every use they could find) — but they can
//! break Lemma 3's *total dominance order* on reducible CFGs, which
//! Theorem 2's single-test fast path and the subtree-skipping loop of
//! Algorithm 3 rely on. We therefore finish with a global filter
//!
//! ```text
//! T_v := (T̃_v \ R_v) ∪ {v}
//! ```
//!
//! which removes only redundant elements (soundness and completeness
//! are unaffected, see the test suite's oracle comparisons) and, on
//! reducible CFGs, leaves exactly `{v} ∪ {headers of loops containing
//! v}` — restoring the total order. The reference implementation in
//! [`reference`](crate::reference) computes Definition 5 verbatim and
//! the test suite checks that both engines answer every query
//! identically.

use fastlive_bitset::BitMatrix;
use fastlive_cfg::{DfsTree, DomTree, EdgeClass};
use fastlive_graph::{Cfg, NodeId};

/// The precomputed matrices, in dominance-preorder number space:
/// row/column `i` talks about the block `dom.node_at_num(i)`.
///
/// Equality is exact and field-for-field (all matrices, bit by bit) —
/// what the persistence codec's round-trip property tests check. `rt`
/// is derived deterministically from `r`, so the codec persists only
/// `r` and `t` and rebuilds `rt` on decode
/// ([`from_parts`](Self::from_parts)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Precomputation {
    /// `r.contains(num(v), num(w))` iff `w ∈ R_v`.
    pub r: BitMatrix,
    /// `t.contains(num(q), num(x))` iff `x ∈ T_q` (globally filtered).
    pub t: BitMatrix,
    /// `r` transposed: `rt.contains(num(w), num(v))` iff `w ∈ R_v`.
    /// Row `num(u)` is "the candidates whose `R` reaches `u`" — the
    /// second operand of the fused query kernel, which ANDs a `T_q` row
    /// against an `rt` row over the candidate interval instead of
    /// walking candidates one by one.
    pub rt: BitMatrix,
}

impl Precomputation {
    /// Assembles a `Precomputation` from the two persisted matrices,
    /// deriving the transposed reachability matrix. The codec calls
    /// this on decode; [`compute`](Self::compute) produces the
    /// identical value for the same graph, so round-trip equality is
    /// exact.
    pub fn from_parts(r: BitMatrix, t: BitMatrix) -> Self {
        let rt = r.transposed();
        Precomputation { r, t, rt }
    }
    /// Runs the full §5.2 precomputation. Unreachable nodes get no rows
    /// (they have no dominance preorder number).
    pub fn compute<G: Cfg>(g: &G, dfs: &DfsTree, dom: &DomTree) -> Self {
        let n = dom.num_reachable();
        let num = |v: NodeId| dom.num(v);

        // ---- R: reduced reachability, one postorder pass.
        let mut r = BitMatrix::new(n, n);
        for &v in dfs.postorder() {
            let vn = num(v);
            r.set(vn, vn);
            for (i, &w) in g.succs(v).iter().enumerate() {
                if dfs.edge_class_at(v, i) != EdgeClass::Back {
                    r.union_rows(vn, num(w));
                }
            }
        }

        // Distinct back-edge targets, sorted by DFS preorder (Theorem 3
        // processing order). `header_row[v]` is the phase-1 row of v.
        let mut targets: Vec<NodeId> = dfs.back_edges().iter().map(|&(_, t)| t).collect();
        targets.sort_unstable_by_key(|&t| dfs.pre(t));
        targets.dedup();
        let mut header_row = vec![u32::MAX; g.num_nodes()];
        for (i, &t) in targets.iter().enumerate() {
            header_row[t as usize] = i as u32;
        }

        // ---- Phase 1: T_t for back-edge targets via Equation (1).
        let mut theaders = BitMatrix::new(targets.len(), n);
        for (i, &t) in targets.iter().enumerate() {
            let tn = num(t);
            theaders.set(i as u32, tn);
            for &(s2, t2) in dfs.back_edges() {
                // t2 ∈ T↑_t iff source s2 ∈ R_t and target t2 ∉ R_t.
                if r.contains(tn, num(s2)) && !r.contains(tn, num(t2)) {
                    let j = header_row[t2 as usize];
                    debug_assert!(
                        (j as usize) < i,
                        "Theorem 3 violated: {t2} not processed before {t}"
                    );
                    theaders.union_rows(i as u32, j);
                }
            }
        }

        // ---- Phases 2+3: seed back-edge sources, propagate in postorder.
        let mut t = BitMatrix::new(n, n);
        // Per-node seed: union of phase-1 rows of its own back-edge
        // targets (phase 2). Collected per source first.
        let mut seeds: Vec<Vec<u32>> = vec![Vec::new(); g.num_nodes()];
        for &(s, tgt) in dfs.back_edges() {
            seeds[s as usize].push(header_row[tgt as usize]);
        }
        for &v in dfs.postorder() {
            let vn = num(v);
            for (i, &w) in g.succs(v).iter().enumerate() {
                if dfs.edge_class_at(v, i) != EdgeClass::Back {
                    t.union_rows(vn, num(w));
                }
            }
            for &row in &seeds[v as usize] {
                t.union_row_from(vn, &theaders, row);
            }
        }

        // ---- Global filter: T_v := (T̃_v \ R_v) ∪ {v}.
        for &v in dfs.preorder() {
            let vn = num(v);
            t.difference_row_from(vn, &r, vn);
            t.set(vn, vn);
        }

        Precomputation::from_parts(r, t)
    }
}
