//! [`BatchLiveness`]: whole-function live-in/live-out sets computed in
//! one matrix pass over the checker's precomputation.
//!
//! # Why a batch path exists
//!
//! The paper's query engine is built for *sparse* consumers — passes
//! that ask about a few variables at a few program points. *Dense*
//! consumers (register allocators building interference graphs,
//! break-even experiments, debuggers dumping live sets) want the
//! classic data-flow shape: a live-in and live-out **set per block**.
//! Looping scalar queries over every `(variable, block)` pair costs
//! `O(V · B)` candidate scans; "Parameterized Construction of Program
//! Representations for Sparse Dataflow Analyses" (Tavares et al.)
//! motivates serving both consumers from one analysis. This module
//! serves the dense ones directly from the `R`/`T` matrices with
//! word-level row unions — no per-query work at all.
//!
//! # The set formulation
//!
//! Algorithm 1 says: `a` is live-in at `q` iff some `t ∈ T_q ∩
//! sdom(def(a))` reduced-reaches a use of `a`. Batched over all
//! variables at once, with one bit column per variable:
//!
//! ```text
//! reach(v)  = uses(v) ∪ ⋃ { reach(w) : (v, w) a non-back edge }
//!             — vars with a use in R_v; one postorder pass of word
//!               unions, exactly like the R matrix itself (§5.2)
//! strict(v) = strict(idom(v)) ∪ defs(idom(v))
//!             — vars whose def strictly dominates v; one dominator-
//!               preorder pass. Variable columns are grouped by
//!               definition block, so `defs(idom(v))` is a contiguous
//!               column interval spliced in with one masked row union
//! cand(t)   = reach(t) ∩ strict(t)
//!             — vars for which t is a live-in witness (def sdom t and
//!               R_t touches a use)
//! live_in(q)  = (⋃ { cand(t) : t ∈ T_q }) ∩ strict(q)
//! live_out(q) = ((⋃ { cand(t) : t ∈ T_q, t ≠ q }) ∪ X(q)) ∩ strict(q)
//!               ∪ (defs(q) ∩ outside_use)
//! ```
//!
//! where `X(q)` is `reach(q)` when `q` is a back-edge target (its
//! self-cycle may re-reach a use at `q`, §4.2) and otherwise
//! `reach_excl(q) = ⋃ reach(succ)` (the `U \ {q}` of Algorithm 2), and
//! the final `live_out` term is Algorithm 2's defining-block case:
//! variables defined at `q` with a use outside `q`. The trailing
//! `∩ strict(q)` enforces Algorithm 3's precondition `num(def) <
//! num(q) ≤ maxnum(def)` — without it, an irreducible `t ∈ T_q` inside
//! `def`'s subtree could report liveness at a `q` the definition does
//! not even dominate.
//!
//! Total cost: `O((E + Σ|T_q| + B) · V/64)` word operations for `B`
//! blocks, `E` edges and `V` variables — compare `O(V · B)` scalar
//! queries, each with its own candidate walk. The break-even between
//! the two is measured by `benches/query.rs` and
//! `--bin bench_query_json`.

use std::fmt;

use fastlive_bitset::BitMatrix;
use fastlive_cfg::EdgeClass;
use fastlive_graph::{Cfg, NodeId};

use crate::checker::LivenessChecker;

/// Why [`BatchLiveness::compute`] rejected its variable inputs.
///
/// Malformed def-use input is a recoverable condition, not a panic: a
/// long-lived analysis engine serving many clients must be able to
/// refuse one bad request and keep answering the rest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// A use site named a variable with no entry in `defs`.
    UnknownVariable {
        /// The out-of-range variable index.
        var: u32,
        /// How many variables `defs` actually defined.
        num_defined: usize,
    },
    /// A definition or use site named a block outside the graph.
    BlockOutOfRange {
        /// The out-of-range block id.
        block: NodeId,
        /// The graph's node count.
        num_blocks: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BatchError::UnknownVariable { var, num_defined } => {
                write!(f, "use of unknown variable {var} ({num_defined} defined)")
            }
            BatchError::BlockOutOfRange { block, num_blocks } => {
                write!(f, "block {block} out of range ({num_blocks} blocks)")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Live-in/live-out sets for **all** blocks and variables of a CFG,
/// computed in one pass from a [`LivenessChecker`]'s precomputation.
///
/// Variables are caller-defined indices `0..defs.len()`; block rows are
/// node ids. Unreachable blocks (and variables defined in them) are
/// never live.
///
/// # Examples
///
/// ```
/// use fastlive_core::{BatchLiveness, LivenessChecker};
/// use fastlive_graph::DiGraph;
///
/// // 0 -> 1 -> 2 -> 1 (loop), 2 -> 3. Variable 0 defined at block 0
/// // and used at block 2 is live around the whole loop.
/// let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
/// let live = LivenessChecker::compute(&g);
/// let batch = BatchLiveness::compute(&g, &live, &[0], &[(0, 2)])?;
/// assert!(batch.is_live_in(0, 1));
/// assert!(batch.is_live_in(0, 2));
/// assert!(batch.is_live_out(0, 2)); // back to the header
/// assert!(!batch.is_live_in(0, 3)); // dead after the loop
/// assert_eq!(batch.live_in_vars(2), vec![0]);
/// # Ok::<(), fastlive_core::BatchError>(())
/// ```
#[derive(Clone, Debug)]
pub struct BatchLiveness {
    /// Row `num(b)`, column `col_of[var]`: live-in sets.
    live_in: BitMatrix,
    /// Same layout: live-out sets.
    live_out: BitMatrix,
    /// Dominance-preorder number per node id (`u32::MAX` unreachable).
    num_by_node: Vec<u32>,
    /// Column per variable (`u32::MAX` when the def is unreachable).
    col_of: Vec<u32>,
    /// Original variable index per column (inverse of `col_of`).
    var_of_col: Vec<u32>,
}

impl BatchLiveness {
    /// Computes live-in/live-out for every block of `g` at once.
    ///
    /// `defs[a]` is the definition block of variable `a`; `uses` lists
    /// `(a, block)` use sites (Definition 1 attribution: a φ-argument
    /// is a use at the predecessor). Duplicates are fine. The answers
    /// match [`LivenessChecker::is_live_in`] /
    /// [`LivenessChecker::is_live_out`] on every pair.
    ///
    /// # Errors
    ///
    /// Returns a [`BatchError`] if a block id is out of range for `g`
    /// or a use names a variable `>= defs.len()` — diagnostics, not
    /// panics, so malformed input can't abort a long-lived engine.
    ///
    /// # Panics
    ///
    /// Panics if `checker` was computed over a different graph than `g`
    /// (an API-contract violation, unlike malformed variable input).
    pub fn compute<G: Cfg>(
        g: &G,
        checker: &LivenessChecker,
        defs: &[NodeId],
        uses: &[(u32, NodeId)],
    ) -> Result<Self, BatchError> {
        let num_blocks = g.num_nodes();
        for &d in defs {
            if d as usize >= num_blocks {
                return Err(BatchError::BlockOutOfRange {
                    block: d,
                    num_blocks,
                });
            }
        }
        for &(a, ub) in uses {
            if a as usize >= defs.len() {
                return Err(BatchError::UnknownVariable {
                    var: a,
                    num_defined: defs.len(),
                });
            }
            if ub as usize >= num_blocks {
                return Err(BatchError::BlockOutOfRange {
                    block: ub,
                    num_blocks,
                });
            }
        }

        let dfs = checker.dfs();
        let dom = checker.dom();
        let n = dom.num_reachable();
        // Shared with the checker — built once in `with_parts`.
        let num_by_node = checker.num_by_node().to_vec();
        assert_eq!(
            num_by_node.len(),
            g.num_nodes(),
            "checker was computed over a different graph"
        );
        let num_of = |v: NodeId| -> Option<u32> {
            match num_by_node[v as usize] {
                u32::MAX => None,
                k => Some(k),
            }
        };

        // ---- Variable columns, grouped by definition block in
        // preorder-number order so defs(b) is the contiguous column
        // interval [col_lo[num(b)], col_hi[num(b)]).
        let mut counts = vec![0u32; n];
        for &d in defs {
            if let Some(dn) = num_of(d) {
                counts[dn as usize] += 1;
            }
        }
        let mut col_lo = vec![0u32; n];
        let mut col_hi = vec![0u32; n];
        let mut acc = 0u32;
        for i in 0..n {
            col_lo[i] = acc;
            acc += counts[i];
            col_hi[i] = acc;
        }
        let v_cols = acc as usize;
        let mut col_of = vec![u32::MAX; defs.len()];
        let mut var_of_col = vec![0u32; v_cols];
        let mut next = col_lo.clone();
        for (a, &d) in defs.iter().enumerate() {
            if let Some(dn) = num_of(d) {
                let c = next[dn as usize];
                next[dn as usize] += 1;
                col_of[a] = c;
                var_of_col[c as usize] = a as u32;
            }
        }

        // All-ones helper row: masked unions against it splice whole
        // column intervals (a definition block's variables) into a row.
        let mut ones = BitMatrix::new(1, v_cols);
        ones.fill_row(0);

        // ---- reach / reach_excl: vars with a use reduced-reachable
        // from each block, one postorder pass (the batched Definition 4).
        // `outside_use` row 0: vars with a use outside their def block
        // (unreachable use blocks included, matching the checker's
        // defining-block test which never resolves them).
        let mut reach = BitMatrix::new(n, v_cols);
        let mut reach_excl = BitMatrix::new(n, v_cols);
        let mut outside_use = BitMatrix::new(1, v_cols);
        for &(a, ub) in uses {
            // In range: every use was validated against `defs` above.
            let col = col_of[a as usize];
            if col == u32::MAX {
                continue; // def unreachable: never live
            }
            if ub != defs[a as usize] {
                outside_use.set(0, col);
            }
            if let Some(un) = num_of(ub) {
                reach.set(un, col);
            }
        }
        for &v in dfs.postorder() {
            let vn = num_by_node[v as usize];
            // Classify by edge *pair*, not successor index: the checker
            // may have been computed over a successor-reordered (e.g.
            // canonicalized) graph with the same edge relation, and
            // back-ness is a property of the node pair alone.
            for &w in g.succs(v) {
                if dfs.edge_class(v, w) != EdgeClass::Back {
                    reach_excl.union_row_from(vn, &reach, num_by_node[w as usize]);
                }
            }
            reach.union_row_from(vn, &reach_excl, vn);
        }

        // ---- strict: vars defined at strict dominators, one
        // dominator-preorder pass with a masked splice per idom.
        let mut strict = BitMatrix::new(n, v_cols);
        for &v in &dom.preorder()[1.min(n)..] {
            let vn = num_by_node[v as usize];
            let p = dom.idom(v).expect("non-root preorder node has an idom");
            let pn = num_by_node[p as usize];
            strict.union_rows(vn, pn);
            let (lo, hi) = (col_lo[pn as usize], col_hi[pn as usize]);
            if lo < hi {
                strict.union_row_from_masked(vn, &ones, 0, lo, hi - 1);
            }
        }

        // ---- cand(t) = reach(t) ∩ strict(t).
        let mut cand = reach.clone();
        for tn in 0..n as u32 {
            cand.intersect_row_from(tn, &strict, tn);
        }

        // ---- Assemble live-in/live-out by unioning candidate rows
        // along each T_q row (which always contains q itself).
        let t = &checker.pre().t;
        let mut live_in = BitMatrix::new(n, v_cols);
        let mut live_out = BitMatrix::new(n, v_cols);
        for &q in dom.preorder() {
            let qn = num_by_node[q as usize];
            for tn in t.row_iter(qn) {
                live_in.union_row_from(qn, &cand, tn);
                if tn != qn {
                    live_out.union_row_from(qn, &cand, tn);
                }
            }
            live_in.intersect_row_from(qn, &strict, qn);
            // Trivial live-out candidate t = q: only a back-edge target
            // proves a cycle that may re-reach a use at q itself; other
            // blocks count uses strictly past q (U \ {q}, §4.2).
            if checker.is_back_edge_target(q) {
                live_out.union_row_from(qn, &cand, qn);
            } else {
                live_out.union_row_from(qn, &reach_excl, qn);
            }
            live_out.intersect_row_from(qn, &strict, qn);
            // Algorithm 2's defining-block case: vars defined at q that
            // are used elsewhere — one masked splice of q's column
            // interval.
            let (lo, hi) = (col_lo[qn as usize], col_hi[qn as usize]);
            if lo < hi {
                live_out.union_row_from_masked(qn, &outside_use, 0, lo, hi - 1);
            }
        }

        Ok(BatchLiveness {
            live_in,
            live_out,
            num_by_node,
            col_of,
            var_of_col,
        })
    }

    #[inline]
    fn cell(&self, matrix: &BitMatrix, var: u32, q: NodeId) -> bool {
        let Some(&col) = self.col_of.get(var as usize) else {
            return false;
        };
        let Some(&qn) = self.num_by_node.get(q as usize) else {
            return false;
        };
        col != u32::MAX && qn != u32::MAX && matrix.contains(qn, col)
    }

    /// Is variable `var` live-in at block `q`? Out-of-range or
    /// unreachable arguments report `false`.
    #[inline]
    pub fn is_live_in(&self, var: u32, q: NodeId) -> bool {
        self.cell(&self.live_in, var, q)
    }

    /// Is variable `var` live-out at block `q`?
    #[inline]
    pub fn is_live_out(&self, var: u32, q: NodeId) -> bool {
        self.cell(&self.live_out, var, q)
    }

    fn row_vars(&self, matrix: &BitMatrix, q: NodeId) -> Vec<u32> {
        let Some(&qn) = self.num_by_node.get(q as usize) else {
            return Vec::new();
        };
        if qn == u32::MAX {
            return Vec::new();
        }
        let mut vars: Vec<u32> = matrix
            .row_iter(qn)
            .map(|c| self.var_of_col[c as usize])
            .collect();
        vars.sort_unstable();
        vars
    }

    /// The live-in set of `q` as sorted variable indices.
    pub fn live_in_vars(&self, q: NodeId) -> Vec<u32> {
        self.row_vars(&self.live_in, q)
    }

    /// The live-out set of `q` as sorted variable indices.
    pub fn live_out_vars(&self, q: NodeId) -> Vec<u32> {
        self.row_vars(&self.live_out, q)
    }

    /// Number of live-in variables at `q` (0 for unreachable blocks).
    pub fn live_in_len(&self, q: NodeId) -> usize {
        match self.num_by_node.get(q as usize) {
            Some(&qn) if qn != u32::MAX => self.live_in.row_len(qn),
            _ => 0,
        }
    }

    /// Number of live-out variables at `q`.
    pub fn live_out_len(&self, q: NodeId) -> usize {
        match self.num_by_node.get(q as usize) {
            Some(&qn) if qn != u32::MAX => self.live_out.row_len(qn),
            _ => 0,
        }
    }

    /// Heap bytes held by the two result matrices.
    pub fn heap_bytes(&self) -> usize {
        self.live_in.heap_bytes() + self.live_out.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_graph::DiGraph;

    /// The paper's Figure 3, 0-based (see `checker.rs`).
    fn figure3() -> DiGraph {
        DiGraph::from_edges(
            11,
            0,
            &[
                (0, 1),
                (1, 2),
                (1, 10),
                (2, 3),
                (2, 7),
                (3, 4),
                (4, 5),
                (5, 6),
                (5, 4),
                (6, 1),
                (7, 8),
                (8, 9),
                (8, 5),
                (9, 7),
                (9, 10),
            ],
        )
    }

    /// Exhaustive agreement with the scalar checker on a given graph
    /// and variable set.
    fn assert_matches_checker(g: &DiGraph, vars: &[(NodeId, Vec<NodeId>)]) {
        use fastlive_graph::Cfg as _;
        let checker = LivenessChecker::compute(g);
        let defs: Vec<NodeId> = vars.iter().map(|&(d, _)| d).collect();
        let uses: Vec<(u32, NodeId)> = vars
            .iter()
            .enumerate()
            .flat_map(|(a, (_, us))| us.iter().map(move |&u| (a as u32, u)))
            .collect();
        let batch = BatchLiveness::compute(g, &checker, &defs, &uses).expect("valid input");
        for (a, (d, us)) in vars.iter().enumerate() {
            for q in 0..g.num_nodes() as u32 {
                assert_eq!(
                    batch.is_live_in(a as u32, q),
                    checker.is_live_in(*d, us, q),
                    "live-in var {a} (def {d}, uses {us:?}) at {q}"
                );
                assert_eq!(
                    batch.is_live_out(a as u32, q),
                    checker.is_live_out(*d, us, q),
                    "live-out var {a} (def {d}, uses {us:?}) at {q}"
                );
            }
        }
    }

    #[test]
    fn figure3_matches_scalar_queries() {
        // The narration's variables plus every single-use combination
        // that satisfies strict SSA (def dominates use).
        let g = figure3();
        let checker = LivenessChecker::compute(&g);
        let mut vars: Vec<(NodeId, Vec<NodeId>)> =
            vec![(1, vec![3]), (2, vec![8]), (2, vec![4]), (2, vec![8, 4])];
        for d in 0..11 {
            for u in 0..11 {
                if checker.dom().dominates(d, u) {
                    vars.push((d, vec![u]));
                }
            }
        }
        assert_matches_checker(&g, &vars);
    }

    #[test]
    fn loop_and_straight_line_shapes() {
        let loop_g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        assert_matches_checker(
            &loop_g,
            &[
                (0, vec![2]),
                (0, vec![1]),
                (1, vec![1]),
                (0, vec![3]),
                (1, vec![2, 3]),
            ],
        );
        let line = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        assert_matches_checker(
            &line,
            &[(0, vec![2]), (0, vec![0]), (1, vec![1]), (0, vec![1, 2])],
        );
    }

    #[test]
    fn unreachable_defs_and_uses_are_dead() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (2, 1), (2, 3)]);
        let checker = LivenessChecker::compute(&g);
        // Var 0: unreachable def. Var 1: reachable def, unreachable use.
        let batch =
            BatchLiveness::compute(&g, &checker, &[2, 0], &[(0, 1), (1, 3)]).expect("valid input");
        for q in 0..4 {
            assert!(!batch.is_live_in(0, q));
            assert!(!batch.is_live_out(0, q));
            assert!(!batch.is_live_in(1, q));
        }
        // ... but the unreachable use still satisfies the defining-block
        // "used elsewhere" test, exactly like the scalar checker.
        assert_eq!(batch.is_live_out(1, 0), checker.is_live_out(0, &[3], 0));
        // Out-of-range variable indices are simply dead.
        assert!(!batch.is_live_in(99, 0));
    }

    #[test]
    fn live_sets_and_counts_round_trip() {
        let g = figure3();
        let checker = LivenessChecker::compute(&g);
        let defs = [1u32, 2, 2];
        let uses = [(0u32, 3u32), (1, 8), (2, 4)];
        let batch = BatchLiveness::compute(&g, &checker, &defs, &uses).expect("valid input");
        for q in 0..11 {
            let ins = batch.live_in_vars(q);
            assert_eq!(ins.len(), batch.live_in_len(q));
            for a in 0..3u32 {
                assert_eq!(ins.contains(&a), batch.is_live_in(a, q));
            }
            let outs = batch.live_out_vars(q);
            assert_eq!(outs.len(), batch.live_out_len(q));
            for a in 0..3u32 {
                assert_eq!(outs.contains(&a), batch.is_live_out(a, q));
            }
        }
        assert!(batch.heap_bytes() > 0);
    }

    #[test]
    fn no_variables_is_fine() {
        let g = figure3();
        let checker = LivenessChecker::compute(&g);
        let batch = BatchLiveness::compute(&g, &checker, &[], &[]).expect("valid input");
        assert_eq!(batch.live_in_vars(5), Vec::<u32>::new());
        assert_eq!(batch.live_out_len(5), 0);
    }

    #[test]
    fn randomized_agreement_with_checker() {
        // Random graphs (many irreducible) with random strict-SSA-ish
        // variables: def anywhere, uses in the def's dominance subtree.
        for seed in 1..10u64 {
            let n: u32 = 40;
            let graph_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let g = fastlive_workload::random_digraph(n, graph_seed, 2 * n as usize);
            let mut x = graph_seed | 1;
            let mut step = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let checker = LivenessChecker::compute(&g);
            let dom = checker.dom().clone();
            let mut vars = Vec::new();
            for _ in 0..60 {
                let d = step() as u32 % n;
                let mut us = Vec::new();
                for _ in 0..1 + step() % 3 {
                    let u = step() as u32 % n;
                    if dom.is_reachable(d) && dom.is_reachable(u) && dom.dominates(d, u) {
                        us.push(u);
                    }
                }
                vars.push((d, us));
            }
            assert_matches_checker(&g, &vars);
        }
    }
}
