//! Strict-SSA verification — the §2.2 prerequisite of the whole paper:
//! "each use of a variable is dominated by its definition".

use std::fmt;

use fastlive_cfg::{DfsTree, DomTree};
use fastlive_ir::{Function, ValueDef};

/// A strict-SSA violation found by [`verify_strict_ssa`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsaError {
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for SsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "strict SSA violated: {}", self.message)
    }
}

impl std::error::Error for SsaError {}

/// Verifies that `func` is in strict SSA form with the dominance
/// property:
///
/// * the function is structurally well-formed
///   ([`fastlive_ir::verify_structure`]),
/// * every block is reachable from the entry (the liveness checker
///   gives no meaningful answers about unreachable code),
/// * every use is dominated by its definition. Uses inside the defining
///   block must come textually after the definition (block parameters
///   count as defined before the first instruction). Branch arguments
///   are uses at the branch's own block, so a loop latch passing a
///   header-defined value back to the header is fine — the header
///   dominates the latch.
///
/// # Errors
///
/// The first violation found, with offending entities in the message.
///
/// # Examples
///
/// ```
/// use fastlive_core::verify_strict_ssa;
/// use fastlive_ir::parse_function;
///
/// let f = parse_function(
///     "function %ok { block0(v0): v1 = iadd v0, v0  return v1 }",
/// )?;
/// verify_strict_ssa(&f)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify_strict_ssa(func: &Function) -> Result<(), SsaError> {
    fastlive_ir::verify_structure(func).map_err(|e| SsaError {
        message: format!("structure: {e}"),
    })?;

    let dfs = DfsTree::compute(func);
    if !dfs.all_reachable() {
        let dead = func
            .blocks()
            .find(|b| !dfs.is_reachable(b.as_u32()))
            .expect("some block is unreachable");
        return Err(SsaError {
            message: format!("{dead} is unreachable from the entry"),
        });
    }
    let dom = DomTree::compute(func, &dfs);

    for b in func.blocks() {
        for (pos, &inst) in func.block_insts(b).iter().enumerate() {
            let mut violation = None;
            func.inst_data(inst).for_each_operand(|v| {
                if violation.is_some() {
                    return;
                }
                let (db, dpos) = match func.value_def(v) {
                    ValueDef::Param { block, .. } => (block, -1isize),
                    ValueDef::Inst(i) => match func.inst_block(i) {
                        Some(block) => (block, func.inst_position(i) as isize),
                        None => {
                            violation =
                                Some(format!("{v} used by {inst} but its definition was removed"));
                            return;
                        }
                    },
                };
                let dominated = if db == b {
                    dpos < pos as isize
                } else {
                    dom.dominates(db.as_u32(), b.as_u32())
                };
                if !dominated {
                    violation = Some(format!(
                        "use of {v} at {inst} in {b} is not dominated by its definition in {db}"
                    ));
                }
            });
            if let Some(message) = violation {
                return Err(SsaError { message });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::{parse_function, InstData, UnaryOp};

    #[test]
    fn accepts_loops_with_block_params() {
        let f = parse_function(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .unwrap();
        verify_strict_ssa(&f).expect("strict");
    }

    #[test]
    fn rejects_use_not_dominated_by_def() {
        // v1 is defined in block1 (the then-branch) but used in block2
        // (the else-branch): block1 does not dominate block2.
        let f = parse_function(
            "function %bad { block0(v0):
                brif v0, block1, block2
            block1:
                v1 = iconst 1
                jump block3
            block2:
                v9 = ineg v0
                jump block3
            block3:
                return v1 }",
        )
        .unwrap();
        // The parser accepts it (textual order is fine); the SSA
        // verifier must reject it.
        let e = verify_strict_ssa(&f).unwrap_err();
        assert!(e.to_string().contains("not dominated"), "{e}");
    }

    #[test]
    fn rejects_unreachable_blocks() {
        let f = parse_function("function %dead { block0: return block1: return }").unwrap();
        let e = verify_strict_ssa(&f).unwrap_err();
        assert!(e.message.contains("unreachable"), "{e}");
    }

    #[test]
    fn rejects_structural_defects_first() {
        let mut f = Function::new("f");
        let b = f.add_block();
        f.ins(b).iconst(1);
        let e = verify_strict_ssa(&f).unwrap_err();
        assert!(e.message.contains("structure"), "{e}");
    }

    #[test]
    fn same_block_use_must_follow_def() {
        // Build v1 = ineg v2; v2 = iconst 1 by hand (parser can't).
        let mut f = Function::new("f");
        let b = f.add_block();
        let k = f.ins(b).iconst(1);
        let neg = f.block_insts(b)[0];
        // Insert a use of k *before* its definition.
        f.insert_inst(
            b,
            0,
            InstData::Unary {
                op: UnaryOp::Ineg,
                arg: k,
            },
        );
        let _ = neg;
        f.ins(b).ret(vec![]);
        let e = verify_strict_ssa(&f).unwrap_err();
        assert!(e.message.contains("not dominated"), "{e}");
    }

    #[test]
    fn branch_args_from_dominating_defs_are_fine() {
        // The latch passes the header's value back: use at the latch is
        // dominated by the header definition.
        let f = parse_function(
            "function %latch { block0:
                v0 = iconst 0
                jump block1(v0)
            block1(v1):
                v2 = icmp_slt v1, v1
                brif v2, block2, block3
            block2:
                jump block1(v1)
            block3:
                return }",
        )
        .unwrap();
        verify_strict_ssa(&f).expect("strict");
    }
}
