//! [`LivenessProvider`]: the workspace-wide liveness query interface —
//! block queries plus program-point queries, with the point
//! decomposition provided as a default implementation.
//!
//! This trait is the generalization of what used to be a private
//! `BlockLiveness` trait inside the SSA-destruction crate. Hoisting it
//! here makes the paper's checker ([`FunctionLiveness`]), the batched
//! snapshot ([`BatchLiveness`](crate::BatchLiveness)) and the data-flow
//! baselines of `fastlive-dataflow` interchangeable behind one
//! interface, for *both* granularities:
//!
//! * **Block queries** (`live_in` / `live_out`) — Definitions 2/3 of
//!   the paper.
//! * **Point queries** (`live_at` / `live_after_def`) — liveness at a
//!   [`ProgramPoint`], the primitive the Budimlić interference test
//!   needs ("whether one variable is live directly after the
//!   instruction that defines the other one", §6.2). The default
//!   implementation derives the answer from block queries via the
//!   decomposition
//!
//!   ```text
//!   live_at(a, p)  =  defined(a) at-or-before p
//!                     ∧ (a has a use after p in p's block  ∨  live_out(a, block(p)))
//!   ```
//!
//!   so every block-granularity engine answers point queries for free
//!   at full speed — both layout legs are the prefix/suffix membership
//!   scans of `fastlive_ir` (the per-use position walk this replaced
//!   survives only as
//!   [`is_live_at_chain_walk`](crate::FunctionLiveness::is_live_at_chain_walk),
//!   the executable spec and bench baseline).
//!
//! Point queries read positions from the *current* instruction layout
//! and def-use chains; they never touch the CFG, so they neither bump
//! nor depend on [`Function::cfg_version`](fastlive_ir::Function::cfg_version).

use fastlive_ir::{Block, Function, ProgramPoint, Value};

/// Why a point-granularity liveness query could not be answered.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PointError {
    /// The queried value's defining instruction was removed from its
    /// block: a detached definition has no program point, so "defined
    /// at or before" is unanswerable. (This used to be an
    /// `expect("definition removed")` panic inside the destruction
    /// pass; it now surfaces as a value.)
    DefinitionRemoved(Value),
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointError::DefinitionRemoved(v) => {
                write!(f, "the defining instruction of {v} was removed")
            }
        }
    }
}

impl std::error::Error for PointError {}

/// A liveness engine answering block- and point-granularity queries
/// for the SSA values of a [`Function`].
///
/// All implementations must agree on the semantics (Definitions 1–3 of
/// the paper, φ-uses attributed to predecessor blocks); clients like
/// the SSA-destruction pass make identical decisions with any correct
/// provider, so swapping providers changes performance, never results
/// — which is what lets the benchmarks compare pure engine cost on an
/// identical query stream.
///
/// Methods take `&mut self` because set-based engines may patch
/// themselves lazily when queried about values created mid-pass.
///
/// # Examples
///
/// A block-only engine answers point queries through the default
/// decomposition:
///
/// ```
/// use fastlive_core::{FunctionLiveness, LivenessProvider};
/// use fastlive_ir::parse_function;
///
/// let f = parse_function(
///     "function %f { block0(v0):
///          v1 = iconst 1
///          v2 = iadd v0, v1
///          return v2 }",
/// )?;
/// let mut live = FunctionLiveness::compute(&f);
/// let v1 = f.value("v1").unwrap();
/// // v1 is live just after its definition (the iadd still needs it) …
/// assert!(live.live_after_def(&f, v1)?);
/// // … and dead after the iadd (its last use).
/// let after_iadd = f.point_after(f.block_insts(f.entry_block())[1]).unwrap();
/// assert!(!live.live_at(&f, v1, after_iadd)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait LivenessProvider {
    /// Is `v` live-in at `b` (Definition 2)?
    fn live_in(&mut self, func: &Function, v: Value, b: Block) -> bool;

    /// Is `v` live-out at `b` (Definition 3)?
    fn live_out(&mut self, func: &Function, v: Value, b: Block) -> bool;

    /// Is `v` live at program point `p`?
    ///
    /// The default implementation is the point decomposition above:
    /// `v` is dead before its definition point; otherwise it is live
    /// iff it has a use after `p` inside `p`'s block or is live-out of
    /// that block. Errs with [`PointError::DefinitionRemoved`] when
    /// `v`'s defining instruction was removed.
    fn live_at(&mut self, func: &Function, v: Value, p: ProgramPoint) -> Result<bool, PointError> {
        if !func
            .is_defined_at(v, p)
            .ok_or(PointError::DefinitionRemoved(v))?
        {
            return Ok(false); // same block, not yet defined at p
        }
        Ok(func.has_use_after(v, p) || self.live_out(func, v, p.block()))
    }

    /// Is `v` live just after its own definition — i.e. is it used at
    /// all past the defining instruction? (The Budimlić test asks this
    /// of the dominating value at the dominated definition point.)
    fn live_after_def(&mut self, func: &Function, v: Value) -> Result<bool, PointError> {
        let def = func.def_point(v).ok_or(PointError::DefinitionRemoved(v))?;
        self.live_at(func, v, def)
    }

    /// A pass rewrote the uses of `v` (copy insertion): engines that
    /// store liveness *sets* must refresh their information for `v`,
    /// mirroring the set maintenance Sreedhar's algorithm performs in
    /// LAO. The paper's checker needs nothing here — its precomputation
    /// is variable-independent — which is the whole point.
    fn invalidate_value(&mut self, func: &Function, v: Value) {
        let _ = (func, v);
    }

    /// Engine name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's checker as a provider. `live_at` is overridden to route
/// through the inherent
/// [`is_live_at`](crate::FunctionLiveness::is_live_at) — the same
/// decomposition as the trait default, pinned to one implementation so
/// the two entry points cannot drift.
impl LivenessProvider for crate::FunctionLiveness {
    fn live_in(&mut self, func: &Function, v: Value, b: Block) -> bool {
        self.is_live_in(func, v, b)
    }
    fn live_out(&mut self, func: &Function, v: Value, b: Block) -> bool {
        self.is_live_out(func, v, b)
    }
    fn live_at(&mut self, func: &Function, v: Value, p: ProgramPoint) -> Result<bool, PointError> {
        self.is_live_at(func, v, p)
    }
    fn name(&self) -> &'static str {
        "new (Boissinot et al.)"
    }
}

/// The dense snapshot as a provider. Block answers come from the
/// materialized matrices (O(1) bit probes); point queries use the
/// default decomposition over the *current* def-use chains. Note the
/// snapshot itself goes stale on instruction edits — re-materialize
/// after editing, or use [`FunctionLiveness`](crate::FunctionLiveness)
/// directly when the program is being rewritten mid-query.
impl LivenessProvider for crate::BatchLiveness {
    fn live_in(&mut self, _func: &Function, v: Value, b: Block) -> bool {
        self.is_live_in(v.index() as u32, b.as_u32())
    }
    fn live_out(&mut self, _func: &Function, v: Value, b: Block) -> bool {
        self.is_live_out(v.index() as u32, b.as_u32())
    }
    fn name(&self) -> &'static str {
        "batch snapshot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionLiveness;
    use fastlive_ir::parse_function;

    /// A provider that only knows block queries: exercises the default
    /// point decomposition against the checker's native fast path.
    struct BlockOnly(FunctionLiveness);

    impl LivenessProvider for BlockOnly {
        fn live_in(&mut self, func: &Function, v: Value, b: Block) -> bool {
            self.0.is_live_in(func, v, b)
        }
        fn live_out(&mut self, func: &Function, v: Value, b: Block) -> bool {
            self.0.is_live_out(func, v, b)
        }
        fn name(&self) -> &'static str {
            "block-only"
        }
    }

    #[test]
    fn default_decomposition_matches_native_fast_path() {
        let f = parse_function(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .expect("parses");
        let mut fast = FunctionLiveness::compute(&f);
        let mut derived = BlockOnly(FunctionLiveness::compute(&f));
        for v in f.values() {
            for b in f.blocks() {
                for p in f.block_points(b) {
                    assert_eq!(
                        fast.live_at(&f, v, p),
                        derived.live_at(&f, v, p),
                        "{v} at {p}"
                    );
                }
            }
            assert_eq!(fast.live_after_def(&f, v), derived.live_after_def(&f, v));
        }
    }

    #[test]
    fn detached_definition_is_an_error_not_a_panic() {
        let mut f = parse_function("function %f { block0(v0): return v0 }").expect("parses");
        let b0 = f.entry_block();
        let dead = f.insert_inst(b0, 0, fastlive_ir::InstData::IntConst { imm: 1 });
        let dv = f.inst_result(dead).unwrap();
        let mut live = FunctionLiveness::compute(&f);
        assert_eq!(live.live_after_def(&f, dv), Ok(false));
        f.remove_inst(dead);
        assert_eq!(
            live.live_after_def(&f, dv),
            Err(PointError::DefinitionRemoved(dv))
        );
        let p = fastlive_ir::ProgramPoint::block_entry(b0);
        assert_eq!(
            live.live_at(&f, dv, p),
            Err(PointError::DefinitionRemoved(dv))
        );
        let msg = PointError::DefinitionRemoved(dv).to_string();
        assert!(msg.contains("removed"), "{msg}");
    }
}
