//! [`AnalysisError`]: why a function's liveness analysis produced no
//! answer — the typed alternative to letting a panic or a poisoned
//! lock take the process down.
//!
//! The paper's algorithm itself is total: every well-formed query has
//! an answer. Failures enter through the *system* around it — a
//! precomputation that panics on a pathological input, a detached
//! definition at a point query. Engines catch those and return this
//! error per function, so one bad function degrades to one failed
//! result while every other function (and every other cache stripe)
//! keeps answering.

use crate::provider::PointError;

/// A per-function analysis failure. Returned by engine-level entry
/// points (`EngineSession` queries, `AnalysisEngine::destruct_module`)
/// instead of unwinding: callers always receive a correct answer or a
/// typed error, never a crash from another tenant's function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The precomputation (or a fault-injection hook standing in for
    /// it) panicked. The payload is the panic message when it carried
    /// one. The in-flight slot for the function's CFG shape was
    /// abandoned; a later probe of the same shape retries from
    /// scratch.
    ComputePanicked {
        /// The panic payload, stringified (`"<non-string panic>"` when
        /// the payload was neither `&str` nor `String`).
        message: String,
    },
    /// A point-granularity query failed (see [`PointError`]).
    Point(PointError),
}

impl From<PointError> for AnalysisError {
    fn from(e: PointError) -> Self {
        AnalysisError::Point(e)
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::ComputePanicked { message } => {
                write!(f, "liveness precomputation panicked: {message}")
            }
            AnalysisError::Point(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Point(e) => Some(e),
            AnalysisError::ComputePanicked { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::Value;

    #[test]
    fn displays_and_converts() {
        let e = AnalysisError::ComputePanicked {
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        let v = Value::from_index(3);
        let p: AnalysisError = PointError::DefinitionRemoved(v).into();
        assert_eq!(p, AnalysisError::Point(PointError::DefinitionRemoved(v)));
        assert!(std::error::Error::source(&p).is_some());
        assert!(std::error::Error::source(&e).is_none());
    }
}
