//! The liveness checker: Algorithms 1–3 of the paper.
//!
//! # The word-masked interval trick, fused
//!
//! Thanks to the §5.1 dominance-preorder numbering, the Algorithm 3
//! candidate set `T_q ∩ sdom(def)` is the **contiguous bit interval**
//! `[num(def)+1, maxnum(def)]` of `T_q`'s row. The hot query paths
//! exploit that with a *fused* kernel: Algorithm 1 asks whether some
//! candidate `t` in that interval has `use ∈ R_t`, and with the
//! transposed reachability matrix (`rt`, whose row `num(use)` collects
//! exactly the `t` with `use ∈ R_t`) that becomes a single masked
//! word-parallel AND of two rows over the interval
//! ([`BitMatrix::rows_intersect_in_range`](fastlive_bitset::BitMatrix::rows_intersect_in_range)):
//! each interval word is loaded once, edge words are masked once, and
//! no candidate is ever materialized. This answers over the **full**
//! candidate set, which is exactly Algorithm 1's semantics — the §4.1
//! subtree skipping and the Theorem 2 fast path only drop *redundant*
//! tests, so the fused answer is identical by construction (the
//! differential suite pins this against [`is_live_in_scalar`] and the
//! enumeration loop).
//!
//! The explicit candidate walk survives as [`Candidates`]: the row is
//! read as `u64` words, the first word is masked with
//! `!0 << (num(def)+1 mod 64)` to clip the interval's left edge, and
//! set bits pop off a cached *cursor word* with `trailing_zeros`;
//! subtree skipping re-masks the cursor directly at `maxnum(t)+1`. The
//! iterator powers the ablation benchmarks, diagnostics, and the
//! differential tests that keep the fused kernel honest.
//!
//! [`is_live_in_scalar`]: LivenessChecker::is_live_in_scalar

use fastlive_cfg::{DfsTree, DomTree, Reducibility};
use fastlive_graph::{Cfg, NodeId};

use crate::precompute::Precomputation;

/// Fast SSA liveness checking over an arbitrary CFG.
///
/// This is the paper's contribution as a reusable object. Construction
/// runs the *variable-independent* precomputation (DFS tree, dominator
/// tree, the reduced-reachability matrix `R` and the back-edge-target
/// matrix `T`); afterwards [`is_live_in`](Self::is_live_in) and
/// [`is_live_out`](Self::is_live_out) answer queries for **any**
/// variable, given only its definition block and its def-use chain —
/// no per-variable state exists, so adding or removing variables,
/// instructions or uses never invalidates a `LivenessChecker`. Only
/// CFG edits (new blocks or edges) require recomputation.
///
/// The query path is the bitset implementation of §5.1 (Algorithm 3)
/// taken one step further: `T_q ∩ sdom(def)` is the interval
/// `[num(def)+1, maxnum(def)]` of `T_q`'s bit row, and the whole
/// candidate loop fuses into one masked word-parallel AND of that
/// interval against the use's transposed-`R` row (see the module
/// docs). The explicit loop — candidates in dominance-preorder order,
/// §4.1 subtree skipping, the Theorem 2 single-test exit on reducible
/// CFGs — survives as [`candidates`](Self::candidates) and
/// [`is_live_in_scalar`](Self::is_live_in_scalar) for ablation and
/// differential testing.
///
/// # Examples
///
/// ```
/// use fastlive_core::LivenessChecker;
/// use fastlive_graph::DiGraph;
///
/// // 0 -> 1 -> 2 -> 1 (loop), 2 -> 3. A variable defined in 0 and
/// // used in 2 is live around the whole loop.
/// let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
/// let live = LivenessChecker::compute(&g);
/// assert!(live.is_live_in(0, &[2], 1));
/// assert!(live.is_live_in(0, &[2], 2));
/// assert!(live.is_live_out(0, &[2], 2)); // back to the header
/// assert!(!live.is_live_in(0, &[2], 3)); // dead after the loop
/// ```
#[derive(Clone, Debug)]
pub struct LivenessChecker {
    dfs: DfsTree,
    dom: DomTree,
    pre: Precomputation,
    /// `maxnum` indexed by dominance-preorder *number* (for subtree
    /// skipping without going back to node ids).
    maxnum_by_num: Vec<u32>,
    /// Dominance-preorder number per node id (`u32::MAX` when
    /// unreachable) — the query hot path avoids the panicking
    /// [`DomTree::num`] accessor.
    num_by_node: Vec<u32>,
    is_back_target: Vec<bool>,
    reducible: bool,
    /// §4.1 dominance-subtree skipping in the candidate loop. Always
    /// sound; disabled only by the ablation benchmark.
    skip_subtrees: bool,
}

impl LivenessChecker {
    /// Runs all precomputations for `g`.
    pub fn compute<G: Cfg>(g: &G) -> Self {
        let dfs = DfsTree::compute(g);
        let dom = DomTree::compute(g, &dfs);
        Self::with_parts(g, dfs, dom)
    }

    /// Builds a checker reusing an existing DFS and dominator tree
    /// (which many compilers keep around anyway — §2 lists them as
    /// prerequisites that are "often available").
    pub fn with_parts<G: Cfg>(g: &G, dfs: DfsTree, dom: DomTree) -> Self {
        let pre = Precomputation::compute(g, &dfs, &dom);
        Self::with_precomputation(g, dfs, dom, pre)
    }

    /// Builds a checker from an **already-computed** precomputation —
    /// the reuse hook for engines that cache `R`/`T` matrices by CFG
    /// shape (the matrices depend only on the graph, never on
    /// variables, so any CFG-identical function shares them).
    ///
    /// # Panics
    ///
    /// Panics if `pre`'s matrices were not computed over `dom`'s
    /// reachable-node universe (a shape mismatch would silently corrupt
    /// every query).
    pub fn with_precomputation<G: Cfg>(
        g: &G,
        dfs: DfsTree,
        dom: DomTree,
        pre: Precomputation,
    ) -> Self {
        assert_eq!(
            pre.r.rows(),
            dom.num_reachable(),
            "precomputation was built over a different graph shape"
        );
        let mut maxnum_by_num = vec![0u32; dom.num_reachable()];
        for i in 0..dom.num_reachable() as u32 {
            maxnum_by_num[i as usize] = dom.maxnum(dom.node_at_num(i));
        }
        let mut num_by_node = vec![u32::MAX; g.num_nodes()];
        for (n, &v) in dom.preorder().iter().enumerate() {
            num_by_node[v as usize] = n as u32;
        }
        let mut is_back_target = vec![false; g.num_nodes()];
        for &(_, t) in dfs.back_edges() {
            is_back_target[t as usize] = true;
        }
        let reducible = Reducibility::compute(&dfs, &dom).is_reducible();
        LivenessChecker {
            dfs,
            dom,
            pre,
            maxnum_by_num,
            num_by_node,
            is_back_target,
            reducible,
            skip_subtrees: true,
        }
    }

    /// Dominance-preorder number of `v`, or `None` when unreachable —
    /// the non-panicking lookup the query loops use.
    #[inline]
    pub(crate) fn num_of(&self, v: NodeId) -> Option<u32> {
        match self.num_by_node.get(v as usize) {
            Some(&n) if n != u32::MAX => Some(n),
            _ => None,
        }
    }

    /// The precomputed `R`/`T` matrices (crate-internal: the batch
    /// subsystem reuses them without re-running the precomputation).
    pub(crate) fn pre(&self) -> &Precomputation {
        &self.pre
    }

    /// The precomputed `R`/`T` matrices — the public reuse hook.
    /// Together with [`with_precomputation`](Self::with_precomputation)
    /// this lets an engine move a precomputation out of one checker and
    /// into another for a CFG-identical function without re-running
    /// §5.2.
    pub fn precomputation(&self) -> &Precomputation {
        &self.pre
    }

    /// The node-id → preorder-number map (`u32::MAX` = unreachable),
    /// indexed by node id — shared with the batch subsystem so the map
    /// is built exactly once.
    pub(crate) fn num_by_node(&self) -> &[u32] {
        &self.num_by_node
    }

    /// Enables or disables the §4.1 subtree skipping in the candidate
    /// loop (on by default). Skipping is what makes Theorem 2 concrete:
    /// on a reducible CFG the surviving candidates form a dominance
    /// chain, so the most-dominating one is tested and the rest of the
    /// chain — its subtree — is skipped, leaving exactly one iteration.
    /// Disabling it (ablation benchmark) visits every element of
    /// `T_q ∩ sdom(def)` and must return the same answers, only slower.
    pub fn set_subtree_skipping(&mut self, enabled: bool) {
        self.skip_subtrees = enabled;
    }

    /// `true` if the CFG is reducible (every back-edge target dominates
    /// its source).
    pub fn is_reducible(&self) -> bool {
        self.reducible
    }

    /// The dominator tree the checker computed.
    pub fn dom(&self) -> &DomTree {
        &self.dom
    }

    /// The DFS tree the checker computed.
    pub fn dfs(&self) -> &DfsTree {
        &self.dfs
    }

    /// `true` if `v` is the target of a DFS back edge.
    pub fn is_back_edge_target(&self, v: NodeId) -> bool {
        self.is_back_target[v as usize]
    }

    /// `w ∈ R_v`: is `w` reachable from `v` in the reduced graph
    /// (no back edges)? Both must be reachable from the entry.
    #[inline]
    pub fn reduced_reachable(&self, v: NodeId, w: NodeId) -> bool {
        match (self.num_of(v), self.num_of(w)) {
            (Some(vn), Some(wn)) => self.pre.r.contains(vn, wn),
            _ => false,
        }
    }

    /// The set `R_v` as node ids (primarily for tests and diagnostics).
    pub fn r_set(&self, v: NodeId) -> Vec<NodeId> {
        self.pre
            .r
            .row_iter(self.dom.num(v))
            .map(|n| self.dom.node_at_num(n))
            .collect()
    }

    /// The set `T_q` as node ids (primarily for tests and diagnostics).
    pub fn t_set(&self, q: NodeId) -> Vec<NodeId> {
        self.pre
            .t
            .row_iter(self.dom.num(q))
            .map(|n| self.dom.node_at_num(n))
            .collect()
    }

    /// The candidate back-edge targets for a query `(def, q)`:
    /// `T_q ∩ sdom(def)`, most-dominating first, with each candidate's
    /// dominance subtree skipped (the Algorithm 3 loop). Honors the
    /// Theorem 2 fast path. Empty when `q ∉ sdom(def)` or either block
    /// is unreachable.
    pub fn candidates(&self, def: NodeId, q: NodeId) -> Candidates<'_> {
        Candidates {
            checker: self,
            nums: self.candidate_nums(def, q).unwrap_or_default(),
        }
    }

    /// The candidate loop in preorder-number space — what the query hot
    /// paths iterate, sparing the NodeId round-trip of
    /// [`candidates`](Self::candidates). `None` when the Algorithm 3
    /// precheck fails.
    #[inline]
    fn candidate_nums(&self, def: NodeId, q: NodeId) -> Option<CandidateNums<'_>> {
        let (Some(defn), Some(qn)) = (self.num_of(def), self.num_of(q)) else {
            return None;
        };
        let max_dom = self.maxnum_by_num[defn as usize];
        // `if (q <= def || max_dom < q) return false;` of Algorithm 3.
        if qn <= defn || max_dom < qn {
            return None;
        }
        let words = self.pre.t.row_words(qn);
        let from = defn + 1;
        let wi = from as usize / 64;
        // Left edge of the interval: one mask. (`from <= max_dom < n`,
        // so `wi` is always in range.)
        let cur = words[wi] & (!0u64 << (from % 64));
        Some(CandidateNums {
            words,
            cur,
            wi,
            max_dom,
            maxnum_by_num: &self.maxnum_by_num,
            skip_subtrees: self.skip_subtrees,
        })
    }

    /// `true` if a query `(def, q)` has a non-empty candidate set
    /// `T_q ∩ sdom(def)`. A `false` answer proves the variable dead at
    /// `q` regardless of its uses; the query entry points use this to
    /// reject before resolving any use numbers.
    ///
    /// This is exactly the `q <= def || maxnum(def) < q` precheck of
    /// Algorithm 3 — no row scan. Once the precheck passes the set is
    /// *never* empty: the precomputation's global filter puts `q` into
    /// its own `T_q`, and `num(q)` lies inside `[num(def)+1,
    /// maxnum(def)]` by the precheck itself, so `q` is always a
    /// candidate (the `debug_assert!` pins the invariant).
    #[inline]
    pub fn has_candidates(&self, def: NodeId, q: NodeId) -> bool {
        let (Some(defn), Some(qn)) = (self.num_of(def), self.num_of(q)) else {
            return false;
        };
        let max_dom = self.maxnum_by_num[defn as usize];
        if qn <= defn || max_dom < qn {
            return false;
        }
        debug_assert!(
            self.pre.t.intersects_in_range(qn, defn + 1, max_dom),
            "global filter guarantees q ∈ T_q inside the interval"
        );
        true
    }

    /// The Algorithm 3 precheck and interval bounds of a query
    /// `(def, q)`: `Some((num(q), num(def)+1, maxnum(def)))` when `q`
    /// is strictly dominated by `def` (both reachable), `None`
    /// otherwise. The fused query paths resolve this once and then run
    /// one [`fused_use_hit`](Self::fused_use_hit) per use.
    #[inline]
    fn query_bounds(&self, def: NodeId, q: NodeId) -> Option<(u32, u32, u32)> {
        let (Some(defn), Some(qn)) = (self.num_of(def), self.num_of(q)) else {
            return None;
        };
        let max_dom = self.maxnum_by_num[defn as usize];
        // `if (q <= def || max_dom < q) return false;` of Algorithm 3.
        if qn <= defn || max_dom < qn {
            return None;
        }
        Some((qn, defn + 1, max_dom))
    }

    /// The fused Algorithm 1 body for one use: does some candidate
    /// `t ∈ T_q` with `num(t) ∈ [lo, hi]` reach the use (`use ∈ R_t`)?
    /// One masked word-parallel pass over the interval, ANDing the
    /// `T_q` row against the transposed-`R` row of the use — each word
    /// touched exactly once, no per-word re-masking, no candidate
    /// enumeration.
    #[inline]
    fn fused_use_hit(&self, qn: u32, lo: u32, hi: u32, un: u32) -> bool {
        self.pre
            .t
            .rows_intersect_in_range(qn, &self.pre.rt, un, lo, hi)
    }

    /// Algorithm 1 / Algorithm 3: is a variable defined at block `def`
    /// with uses at blocks `uses` live-in at block `q`?
    ///
    /// `uses` are blocks in the sense of Definition 1: a φ-argument
    /// counts as a use at the corresponding *predecessor* block.
    /// Duplicate or unreachable entries are allowed (unreachable uses
    /// can never witness liveness).
    ///
    /// The query is one fused kernel per use: the `T_q` row is ANDed
    /// against the use's transposed-`R` row over the candidate
    /// interval, so each interval word is touched exactly once and no
    /// candidate is enumerated (see the module docs). Short-circuits on
    /// the first witnessing use.
    pub fn is_live_in(&self, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
        let Some((qn, lo, hi)) = self.query_bounds(def, q) else {
            return false;
        };
        uses.iter()
            .filter_map(|&u| self.num_of(u))
            .any(|un| self.fused_use_hit(qn, lo, hi, un))
    }

    /// [`is_live_in`](Self::is_live_in) for a use list already resolved
    /// to preorder numbers — lets [`crate::FunctionLiveness`] resolve
    /// its def-use chain exactly once per query.
    #[inline]
    pub(crate) fn is_live_in_prenums(&self, def: NodeId, q: NodeId, nums: &[u32]) -> bool {
        match self.query_bounds(def, q) {
            Some((qn, lo, hi)) => nums.iter().any(|&un| self.fused_use_hit(qn, lo, hi, un)),
            None => false,
        }
    }

    /// The seed's scalar query loop, kept callable for ablation and the
    /// before/after benchmark (`benches/query.rs`, `BENCH_query.json`):
    /// candidates advance bit-at-a-time through `next_set_in_row` and
    /// every use's preorder number is re-resolved on every candidate
    /// iteration — exactly the loop [`is_live_in`](Self::is_live_in)
    /// replaced. Answers are always identical, only slower.
    pub fn is_live_in_scalar(&self, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
        let (Some(defn), Some(qn)) = (self.num_of(def), self.num_of(q)) else {
            return false;
        };
        let max_dom = self.maxnum_by_num[defn as usize];
        if qn <= defn || max_dom < qn {
            return false;
        }
        let mut from = defn + 1;
        while let Some(tn) = self.pre.t.next_set_in_row(qn, from) {
            if tn > max_dom {
                break;
            }
            from = if self.skip_subtrees {
                self.maxnum_by_num[tn as usize] + 1
            } else {
                tn + 1
            };
            for &u in uses {
                if let Some(un) = self.num_of(u) {
                    if self.pre.r.contains(tn, un) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// [`is_live_in`](Self::is_live_in) with the uses given as a bitset
    /// over dominance-preorder *numbers* — the exact set formulation of
    /// Algorithm 1 (`R_t ∩ uses(a) ≠ ∅` as one vectorized intersection
    /// test). Useful when a pass keeps per-variable use sets materialized.
    ///
    /// Build the set with [`use_num_set`](Self::use_num_set).
    ///
    /// # Panics
    ///
    /// Panics if `uses` was built over a different universe than the
    /// checker's reachable-block count (a silent truncation otherwise).
    pub fn is_live_in_set(
        &self,
        def: NodeId,
        uses: &fastlive_bitset::DenseBitSet,
        q: NodeId,
    ) -> bool {
        assert_eq!(
            uses.universe(),
            self.dom.num_reachable(),
            "universe mismatch in is_live_in_set"
        );
        let use_words = uses.as_words();
        let Some(cands) = self.candidate_nums(def, q) else {
            return false;
        };
        for tn in cands {
            // `R_t ∩ uses ≠ ∅` as a word-parallel AND sweep: 64 blocks
            // per step, exiting on the first overlapping word.
            let hit = self
                .pre
                .r
                .row_words(tn)
                .iter()
                .zip(use_words)
                .any(|(&r, &u)| r & u != 0);
            if hit {
                return true;
            }
        }
        false
    }

    /// Converts use blocks into the bitset representation (dominance
    /// preorder numbers) consumed by
    /// [`is_live_in_set`](Self::is_live_in_set). Unreachable blocks are
    /// dropped (they can never witness liveness).
    pub fn use_num_set(&self, uses: &[NodeId]) -> fastlive_bitset::DenseBitSet {
        let mut set = fastlive_bitset::DenseBitSet::new(self.dom.num_reachable());
        for &u in uses {
            if let Some(un) = self.num_of(u) {
                set.insert(un);
            }
        }
        set
    }

    /// Algorithm 2: is the variable live-out at block `q`?
    ///
    /// The two special cases of §4.2 apply: when `q` *is* the
    /// definition block, the variable is live-out iff it has a use
    /// outside `q`; and the trivial candidate `t = q` may only count a
    /// use at `q` itself when `q` is a back-edge target (which proves a
    /// non-trivial cycle through `q`).
    pub fn is_live_out(&self, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
        if def == q {
            // Live-out of the defining block iff some use is elsewhere.
            return uses.iter().any(|&u| u != q);
        }
        let Some((qn, lo, hi)) = self.query_bounds(def, q) else {
            return false;
        };
        let back = self.is_back_target[q as usize];
        uses.iter()
            .filter_map(|&u| self.num_of(u))
            .any(|un| self.fused_use_out_hit(qn, lo, hi, un, back))
    }

    /// The fused Algorithm 2 body for one use. A use elsewhere than `q`
    /// (or any use, when `q` is a back-edge target) scans the full
    /// candidate interval like live-in. A use *at* `q` of a non-target
    /// `q` must not count the trivial candidate `t = q` (the `U \ {q}`
    /// of Algorithm 2, line 8) — that is the single bit `num(q)` of the
    /// interval, so the scan splits into `[lo, qn-1]` and `[qn+1, hi]`
    /// (the kernel treats inverted halves as empty; `qn ∈ [lo, hi]` is
    /// guaranteed by the precheck, and `qn ≥ lo ≥ 1` keeps `qn - 1` in
    /// range).
    #[inline]
    fn fused_use_out_hit(&self, qn: u32, lo: u32, hi: u32, un: u32, back: bool) -> bool {
        if un != qn || back {
            self.fused_use_hit(qn, lo, hi, un)
        } else {
            self.fused_use_hit(qn, lo, qn - 1, un) || self.fused_use_hit(qn, qn + 1, hi, un)
        }
    }

    /// [`is_live_out`](Self::is_live_out) for pre-resolved use numbers
    /// (no defining-block special case — the caller handles `def == q`).
    #[inline]
    pub(crate) fn is_live_out_prenums(&self, def: NodeId, q: NodeId, nums: &[u32]) -> bool {
        let Some((qn, lo, hi)) = self.query_bounds(def, q) else {
            return false;
        };
        let back = self.is_back_target[q as usize];
        nums.iter()
            .any(|&un| self.fused_use_out_hit(qn, lo, hi, un, back))
    }

    /// Heap bytes consumed by the three matrices (`R`, `T`, and the
    /// derived transposed `R`) — the §6.1 memory cost.
    pub fn matrix_heap_bytes(&self) -> usize {
        self.pre.r.heap_bytes() + self.pre.t.heap_bytes() + self.pre.rt.heap_bytes()
    }
}

/// Packs up to `count` resolved numbers (`None`s drop out) into a
/// plain stack array for `count ≤ 8` — no heap allocation, no drop
/// glue — or a spill vector beyond, and hands the packed slice to `f`.
/// The once-per-query scratch both the graph-level and the
/// function-level query paths share.
#[inline]
pub(crate) fn with_nums<R>(
    count: usize,
    nums: impl Iterator<Item = Option<u32>>,
    f: impl FnOnce(&[u32]) -> R,
) -> R {
    if count <= 8 {
        let mut buf = [0u32; 8];
        let mut k = 0;
        for n in nums.flatten() {
            buf[k] = n;
            k += 1;
        }
        f(&buf[..k])
    } else {
        let v: Vec<u32> = nums.flatten().collect();
        f(&v)
    }
}

/// The word-masked interval scan in preorder-number space (see the
/// module docs): borrows the `T_q` row's words and keeps a *cursor
/// word* — the current `u64` with all bits below the scan position
/// already cleared. `next` pops set bits with `trailing_zeros`, skips
/// all-zero words one comparison at a time, and subtree skipping
/// re-masks the cursor at `maxnum(t) + 1` without rescanning the row
/// prefix.
#[derive(Clone, Debug, Default)]
struct CandidateNums<'a> {
    /// Words of the `T_q` row; empty when the query short-circuits.
    words: &'a [u64],
    /// Current word, masked below the scan position.
    cur: u64,
    /// Index of `cur` within `words`.
    wi: usize,
    /// Last preorder number inside `sdom(def)` (inclusive scan bound).
    max_dom: u32,
    /// Subtree extents, for the §4.1 skip.
    maxnum_by_num: &'a [u32],
    skip_subtrees: bool,
}

impl CandidateNums<'_> {
    /// Repositions the cursor at bit `to`, clearing everything below.
    #[inline]
    fn seek(&mut self, to: u32) {
        let wi = to as usize / 64;
        if wi >= self.words.len() {
            self.words = &[];
            self.cur = 0;
            self.wi = 0;
            return;
        }
        self.wi = wi;
        self.cur = self.words[wi] & (!0u64 << (to % 64));
    }
}

impl Iterator for CandidateNums<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        loop {
            if self.cur != 0 {
                let tn = (self.wi * 64) as u32 + self.cur.trailing_zeros();
                if tn > self.max_dom {
                    self.words = &[];
                    self.cur = 0;
                    return None;
                }
                if self.skip_subtrees {
                    // Skip t's whole dominance subtree: R of dominated
                    // candidates is a subset of R_t (§4.1), so testing
                    // them is pointless.
                    self.seek(self.maxnum_by_num[tn as usize] + 1);
                } else {
                    self.cur &= self.cur - 1; // clear lowest set bit
                }
                return Some(tn);
            }
            self.wi += 1;
            if self.wi >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.wi];
        }
    }
}

/// Iterator over the Algorithm 3 candidate loop as node ids; see
/// [`LivenessChecker::candidates`]. A thin wrapper translating the
/// internal number-space scan back to nodes.
#[derive(Clone, Debug)]
pub struct Candidates<'a> {
    checker: &'a LivenessChecker,
    nums: CandidateNums<'a>,
}

impl Iterator for Candidates<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.nums.next().map(|tn| self.checker.dom.node_at_num(tn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_graph::DiGraph;

    /// The paper's Figure 3, 0-based (paper node k = node k-1).
    /// Variables of the narration: w defined at 1 (paper 2) used at 3
    /// (paper 4); x defined at 2 (paper 3) used at 8 (paper 9);
    /// y defined at 2 used at 4 (paper 5).
    fn figure3() -> DiGraph {
        DiGraph::from_edges(
            11,
            0,
            &[
                (0, 1),
                (1, 2),
                (1, 10),
                (2, 3),
                (2, 7),
                (3, 4),
                (4, 5),
                (5, 6),
                (5, 4),
                (6, 1),
                (7, 8),
                (8, 9),
                (8, 5),
                (9, 7),
                (9, 10),
            ],
        )
    }

    #[test]
    fn figure3_t_set_of_node_10_paper() {
        // §3.2: from (paper) node 10, the relevant back-edge targets are
        // 10 itself plus 8, 5, 2 -> 0-based {9, 7, 4, 1}.
        let live = LivenessChecker::compute(&figure3());
        let mut t = live.t_set(9);
        t.sort_unstable();
        assert_eq!(t, vec![1, 4, 7, 9]);
    }

    #[test]
    fn figure3_narrated_queries() {
        let live = LivenessChecker::compute(&figure3());
        assert!(!live.is_reducible(), "the paper's example is irreducible");

        // "is x live-in at node 10?" -- yes (use at 9 reduced-reachable
        // from back-edge target 8). Paper nodes -> 0-based.
        assert!(live.is_live_in(2, &[8], 9));
        // "is y live-in at 10?" -- yes, needs two back-edge hops.
        assert!(live.is_live_in(2, &[4], 9));
        // "is w live at 10?" -- no: 2 (paper) is not strictly dominated
        // by def(w), so it is excluded and no use is reachable.
        assert!(!live.is_live_in(1, &[3], 9));
        // "is x live-in at 4 (paper)?" -- no: reaching the back-edge
        // target 8 (paper) from 4 leaves and re-enters def(x)'s subtree.
        assert!(!live.is_live_in(2, &[8], 3));
    }

    #[test]
    fn figure3_r_sets_spot_checks() {
        let live = LivenessChecker::compute(&figure3());
        // R of (paper) 10 = {10, 11}: only the forward continuation.
        let mut r9 = live.r_set(9);
        r9.sort_unstable();
        assert_eq!(r9, vec![9, 10]);
        // (paper) 8 reaches 9, 10, 6, 7, 11 without back edges
        // (0-based: {8, 9, 5, 6, 10} plus itself).
        let mut r7 = live.r_set(7);
        r7.sort_unstable();
        assert_eq!(r7, vec![5, 6, 7, 8, 9, 10]);
        assert!(live.reduced_reachable(7, 8));
        assert!(!live.reduced_reachable(9, 7));
    }

    #[test]
    fn straight_line_liveness() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        let live = LivenessChecker::compute(&g);
        // def at 0, use at 2: live-in at 1 and 2, live-out at 0 and 1.
        assert!(live.is_live_in(0, &[2], 1));
        assert!(live.is_live_in(0, &[2], 2));
        assert!(!live.is_live_in(0, &[2], 0)); // never live-in at its def
        assert!(live.is_live_out(0, &[2], 0));
        assert!(live.is_live_out(0, &[2], 1));
        assert!(!live.is_live_out(0, &[2], 2));
    }

    #[test]
    fn use_in_def_block_only() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        let live = LivenessChecker::compute(&g);
        // def at 1, used only at 1: dead everywhere else.
        assert!(!live.is_live_in(1, &[1], 2));
        assert!(!live.is_live_out(1, &[1], 1)); // Algorithm 2 line 2-3
        assert!(!live.is_live_out(1, &[1], 0));
        // But with a second use at 2 it is live-out of 1.
        assert!(live.is_live_out(1, &[1, 2], 1));
    }

    #[test]
    fn loop_keeps_values_alive_around_back_edge() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3: use at 1, def at 0.
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let live = LivenessChecker::compute(&g);
        assert!(live.is_reducible());
        // Used at the header: live-out of the body (wraps around).
        assert!(live.is_live_out(0, &[1], 2));
        assert!(live.is_live_in(0, &[1], 2));
        assert!(live.is_live_in(0, &[1], 1));
        assert!(!live.is_live_in(0, &[1], 3));
        // Used only in the body: still live through the header re-entry.
        assert!(live.is_live_out(0, &[2], 2));
    }

    #[test]
    fn self_loop_block_is_its_own_witness() {
        // 0 -> 1, 1 -> 1, 1 -> 2. A variable defined at 0 and used at 1
        // is live-out at 1 (the self-loop re-reaches the use).
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 1), (1, 2)]);
        let live = LivenessChecker::compute(&g);
        assert!(live.is_back_edge_target(1));
        assert!(live.is_live_out(0, &[1], 1));
        // Without the self loop it would be dead-out:
        let g2 = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        let live2 = LivenessChecker::compute(&g2);
        assert!(!live2.is_live_out(0, &[1], 1));
    }

    #[test]
    fn unreachable_blocks_answer_false() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (2, 1), (2, 3)]);
        let live = LivenessChecker::compute(&g);
        assert!(!live.is_live_in(0, &[1], 2)); // q unreachable
        assert!(!live.is_live_in(2, &[1], 1)); // def unreachable
        assert!(!live.is_live_in(0, &[3], 1)); // use unreachable
        assert!(!live.is_live_out(0, &[1], 2));
    }

    #[test]
    fn candidates_are_dominance_ordered_and_skip_subtrees() {
        let g = figure3();
        let live = LivenessChecker::compute(&g);
        // Query (def=1, q=9): T_9 = {1,4,7,9}; sdom(1) excludes 1 itself.
        let cands: Vec<NodeId> = live.candidates(1, 9).collect();
        // num order = dominance preorder: each candidate's num increases
        // and no candidate dominates a later one (subtree skipping).
        for w in cands.windows(2) {
            assert!(live.dom().num(w[0]) < live.dom().num(w[1]));
            assert!(!live.dom().strictly_dominates(w[0], w[1]));
        }
        // Every element of T_q ∩ sdom(def) — q in particular — is
        // dominated by some yielded candidate (subtree skipping only
        // drops elements whose R-set a dominator subsumes).
        assert!(cands.iter().any(|&c| live.dom().dominates(c, 9)));
        assert!(
            cands.len() >= 2,
            "irreducible example needs several tests: {cands:?}"
        );
    }

    #[test]
    fn theorem2_single_candidate_on_reducible() {
        // Nested loops: without subtree skipping, a query deep inside
        // sees the whole header chain; with skipping (Theorem 2), the
        // most-dominating candidate subsumes the rest and the loop body
        // executes exactly once.
        let g = DiGraph::from_edges(5, 0, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 1), (1, 4)]);
        let mut live = LivenessChecker::compute(&g);
        assert!(live.is_reducible());
        live.set_subtree_skipping(false);
        let all: Vec<NodeId> = live.candidates(0, 3).collect();
        live.set_subtree_skipping(true);
        let fast: Vec<NodeId> = live.candidates(0, 3).collect();
        assert!(
            all.len() >= 2,
            "deep loop nest should give several candidates: {all:?}"
        );
        assert_eq!(
            fast.len(),
            1,
            "Theorem 2: a single test suffices on reducible CFGs"
        );
        assert_eq!(fast[0], all[0]);
        // The single candidate dominates all the others (Theorem 2).
        for &t in &all[1..] {
            assert!(live.dom().dominates(fast[0], t));
        }
    }

    #[test]
    fn nested_loops_t_sets_are_header_chains() {
        // Reducible: T_q = {q} + headers of enclosing loops (the loop
        // forest connection the precompute filter guarantees).
        let g = DiGraph::from_edges(
            6,
            0,
            &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 4), (4, 1), (4, 5)],
        );
        let live = LivenessChecker::compute(&g);
        let mut t3 = live.t_set(3);
        t3.sort_unstable();
        assert_eq!(t3, vec![1, 2, 3]); // itself + inner header 2 + outer 1
        let mut t4 = live.t_set(4);
        t4.sort_unstable();
        assert_eq!(t4, vec![1, 4]);
        let mut t5 = live.t_set(5);
        t5.sort_unstable();
        assert_eq!(t5, vec![5]);
    }

    #[test]
    fn query_against_def_that_dominates_nothing() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let live = LivenessChecker::compute(&g);
        // def at 1 (a leaf of the dominance tree except for itself):
        // q = 3 is not strictly dominated by 1 => false regardless.
        assert!(!live.is_live_in(1, &[3], 3));
        assert_eq!(live.candidates(1, 3).count(), 0);
    }

    #[test]
    fn bitset_use_queries_match_slice_queries() {
        let g = figure3();
        let live = LivenessChecker::compute(&g);
        let n = 11u32;
        // Multi-use sets across all (def, q) pairs.
        for def in 0..n {
            for seed in 0..8u32 {
                let uses: Vec<u32> = (0..3).map(|i| (seed * 3 + i * 5 + def) % n).collect();
                let set = live.use_num_set(&uses);
                for q in 0..n {
                    assert_eq!(
                        live.is_live_in(def, &uses, q),
                        live.is_live_in_set(def, &set, q),
                        "def={def} q={q} uses={uses:?}"
                    );
                }
            }
        }
    }

    use fastlive_workload::random_digraph as random_graph;

    #[test]
    fn word_scan_matches_scalar_loop_on_wide_rows() {
        // > 3 words of preorder numbers, so candidate intervals span
        // word boundaries and all-zero middle words actually occur.
        for seed in 1..6u64 {
            let g = random_graph(200, seed * 0x9e37, 260);
            let live = LivenessChecker::compute(&g);
            let mut x = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
            let mut step = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u32
            };
            for _ in 0..4000 {
                let def = step() % 200;
                let uses = [step() % 200, step() % 200];
                let q = step() % 200;
                assert_eq!(
                    live.is_live_in(def, &uses, q),
                    live.is_live_in_scalar(def, &uses, q),
                    "seed={seed} def={def} uses={uses:?} q={q}"
                );
            }
        }
    }

    #[test]
    fn word_scan_candidates_match_scalar_enumeration() {
        for seed in [3u64, 11, 42] {
            let g = random_graph(150, seed, 200);
            for skip in [true, false] {
                let mut live = LivenessChecker::compute(&g);
                live.set_subtree_skipping(skip);
                for def in (0..150).step_by(7) {
                    for q in (0..150).step_by(3) {
                        // Scalar reference: walk T_q bit-at-a-time.
                        let (Some(defn), Some(qn)) = (live.num_of(def), live.num_of(q)) else {
                            assert_eq!(live.candidates(def, q).count(), 0);
                            continue;
                        };
                        let max_dom = live.maxnum_by_num[defn as usize];
                        let mut expect = Vec::new();
                        if qn > defn && qn <= max_dom {
                            let mut from = defn + 1;
                            while let Some(tn) = live.pre.t.next_set_in_row(qn, from) {
                                if tn > max_dom {
                                    break;
                                }
                                from = if skip {
                                    live.maxnum_by_num[tn as usize] + 1
                                } else {
                                    tn + 1
                                };
                                expect.push(live.dom.node_at_num(tn));
                            }
                        }
                        let got: Vec<NodeId> = live.candidates(def, q).collect();
                        assert_eq!(got, expect, "seed={seed} skip={skip} def={def} q={q}");
                    }
                }
            }
        }
    }

    #[test]
    fn has_candidates_agrees_with_iterator() {
        let g = random_graph(150, 77, 200);
        let live = LivenessChecker::compute(&g);
        for def in 0..150 {
            for q in 0..150 {
                assert_eq!(
                    live.has_candidates(def, q),
                    live.candidates(def, q).next().is_some(),
                    "def={def} q={q}"
                );
            }
        }
    }

    #[test]
    fn many_uses_spill_without_changing_answers() {
        let g = figure3();
        let live = LivenessChecker::compute(&g);
        // 12 uses (> the 8-slot inline scratch), with duplicates.
        let uses: Vec<NodeId> = (0..12).map(|i| i % 11).collect();
        for def in 0..11 {
            for q in 0..11 {
                let expect = live.is_live_in_scalar(def, &uses, q);
                assert_eq!(live.is_live_in(def, &uses, q), expect);
                let one_by_one = uses.iter().any(|&u| live.is_live_in(def, &[u], q));
                assert_eq!(expect, one_by_one);
            }
        }
    }

    #[test]
    fn empty_uses_are_never_live() {
        let g = figure3();
        let live = LivenessChecker::compute(&g);
        for def in 0..11 {
            for q in 0..11 {
                assert!(!live.is_live_in(def, &[], q));
                assert!(!live.is_live_out(def, &[], q));
            }
        }
    }

    #[test]
    fn matrix_memory_reporting() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        let live = LivenessChecker::compute(&g);
        // 3 reachable nodes -> three 3x3 matrices (R, T, transposed R)
        // of one word per row (single-word rows are stored unpadded).
        assert_eq!(live.matrix_heap_bytes(), 3 * 3 * 8);
    }

    #[test]
    fn fused_live_out_matches_candidate_enumeration() {
        // Reference: Algorithm 2 over the *full* candidate enumeration
        // (skipping disabled), with the t = q special case applied
        // per-candidate — the loop the fused kernel replaced.
        for seed in [5u64, 23, 91] {
            let g = random_graph(150, seed, 200);
            let mut live = LivenessChecker::compute(&g);
            live.set_subtree_skipping(false);
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut step = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u32
            };
            for _ in 0..3000 {
                let def = step() % 150;
                let uses = [step() % 150, step() % 150, step() % 150];
                let q = step() % 150;
                let expect = if def == q {
                    uses.iter().any(|&u| u != q)
                } else {
                    live.candidates(def, q).any(|t| {
                        uses.iter().any(|&u| {
                            (t != q || live.is_back_edge_target(q) || u != q)
                                && live.reduced_reachable(t, u)
                        })
                    })
                };
                assert_eq!(
                    live.is_live_out(def, &uses, q),
                    expect,
                    "seed={seed} def={def} uses={uses:?} q={q}"
                );
            }
        }
    }
}
