//! The loop-nesting-forest formulation sketched in the paper's outlook
//! (§8): "Our technique uses structural properties of the CFG and could
//! take advantage of a precomputed loop nesting forest."

use fastlive_bitset::BitMatrix;
use fastlive_cfg::{DfsTree, DomTree, EdgeClass, LoopForest, Reducibility};
use fastlive_graph::{Cfg, NodeId};

/// A liveness checker for **reducible** CFGs that replaces the stored
/// `T_q` sets by the loop nesting forest.
///
/// On a reducible CFG the back-edge targets are exactly the loop
/// headers, and the (filtered) set `T_q` is `{q}` plus the headers of
/// the loops containing `q` — a chain in the dominator tree. A query
/// therefore needs **no `T` matrix at all**: walk up the loop forest
/// from `q` while the headers stay strictly dominated by `def(a)`, and
/// test reduced reachability from the outermost survivor (Theorem 2's
/// unique most-dominating candidate). This halves the precomputation
/// memory and is the direction later SSA-liveness work took.
///
/// [`compute`](Self::compute) returns `None` for irreducible CFGs; the
/// caller falls back to [`LivenessChecker`](crate::LivenessChecker)
/// (as §6.1 observes, irreducibility is rare: 7 of 4823 SPEC2000
/// procedures).
///
/// # Examples
///
/// ```
/// use fastlive_core::LoopForestChecker;
/// use fastlive_graph::DiGraph;
///
/// let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
/// let live = LoopForestChecker::compute(&g).expect("reducible");
/// assert!(live.is_live_in(0, &[2], 1));
/// assert!(!live.is_live_in(0, &[2], 3));
/// ```
#[derive(Clone, Debug)]
pub struct LoopForestChecker {
    dom: DomTree,
    forest: LoopForest,
    /// Reduced reachability, rows/columns in dominance-preorder numbers.
    r: BitMatrix,
    is_back_target: Vec<bool>,
}

impl LoopForestChecker {
    /// Precomputes the dominator tree, loop forest and `R` matrix.
    /// Returns `None` if the CFG is irreducible.
    pub fn compute<G: Cfg>(g: &G) -> Option<Self> {
        let dfs = DfsTree::compute(g);
        let dom = DomTree::compute(g, &dfs);
        if !Reducibility::compute(&dfs, &dom).is_reducible() {
            return None;
        }
        let forest = LoopForest::compute(g, &dfs);

        let n = dom.num_reachable();
        let mut r = BitMatrix::new(n, n);
        for &v in dfs.postorder() {
            let vn = dom.num(v);
            r.set(vn, vn);
            for (i, &w) in g.succs(v).iter().enumerate() {
                if dfs.edge_class_at(v, i) != EdgeClass::Back {
                    r.union_rows(vn, dom.num(w));
                }
            }
        }

        let mut is_back_target = vec![false; g.num_nodes()];
        for &(_, t) in dfs.back_edges() {
            is_back_target[t as usize] = true;
        }

        Some(LoopForestChecker {
            dom,
            forest,
            r,
            is_back_target,
        })
    }

    /// The loop forest backing the checker.
    pub fn forest(&self) -> &LoopForest {
        &self.forest
    }

    /// The single candidate of Theorem 2 for the query `(def, q)`:
    /// the outermost loop header enclosing `q` that is still strictly
    /// dominated by `def` — or `q` itself when no such header exists.
    /// `None` when `q ∉ sdom(def)`.
    pub fn candidate(&self, def: NodeId, q: NodeId) -> Option<NodeId> {
        if !self.dom.is_reachable(def)
            || !self.dom.is_reachable(q)
            || !self.dom.strictly_dominates(def, q)
        {
            return None;
        }
        let mut t = q;
        for l in self.forest.containing_loops(q) {
            let h = self.forest.loop_ref(l).header;
            if self.dom.strictly_dominates(def, h) {
                t = h;
            } else {
                break;
            }
        }
        Some(t)
    }

    /// Live-in check via the loop forest (single reachability test).
    pub fn is_live_in(&self, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
        let Some(t) = self.candidate(def, q) else {
            return false;
        };
        let tn = self.dom.num(t);
        uses.iter()
            .any(|&u| self.dom.is_reachable(u) && self.r.contains(tn, self.dom.num(u)))
    }

    /// Live-out check via the loop forest (Algorithm 2's special cases
    /// carried over).
    pub fn is_live_out(&self, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
        if !self.dom.is_reachable(def) || !self.dom.is_reachable(q) {
            return false;
        }
        if def == q {
            return uses.iter().any(|&u| u != q);
        }
        let Some(t) = self.candidate(def, q) else {
            return false;
        };
        let tn = self.dom.num(t);
        let drop_q_use = t == q && !self.is_back_target[q as usize];
        uses.iter().any(|&u| {
            !(drop_q_use && u == q)
                && self.dom.is_reachable(u)
                && self.r.contains(tn, self.dom.num(u))
        })
    }

    /// Heap bytes of the stored matrix — a third of the bitset
    /// engine's, which also keeps `T` and the transposed `R` its fused
    /// query kernel scans.
    pub fn matrix_heap_bytes(&self) -> usize {
        self.r.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LivenessChecker;
    use fastlive_graph::DiGraph;

    #[test]
    fn rejects_irreducible_graphs() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
        assert!(LoopForestChecker::compute(&g).is_none());
    }

    #[test]
    fn nested_loop_chain_candidate() {
        // 0 -> 1 -> 2 -> 3 -> 2, 3 -> 1, 1 -> 4: loops at 1 and 2.
        let g = DiGraph::from_edges(5, 0, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 1), (1, 4)]);
        let live = LoopForestChecker::compute(&g).expect("reducible");
        // def at entry: the outermost header under it is 1.
        assert_eq!(live.candidate(0, 3), Some(1));
        // def at 1: headers under it stop at 2.
        assert_eq!(live.candidate(1, 3), Some(2));
        // def at 2: no header strictly below, candidate is q itself.
        assert_eq!(live.candidate(2, 3), Some(3));
        // q not strictly dominated: no candidate.
        assert_eq!(live.candidate(3, 1), None);
    }

    #[test]
    fn matches_bitset_engine_on_reducible_random_graphs() {
        // Tree backbone plus back edges to ancestors: reducible by
        // construction.
        let mut state = 0xdeadbeef12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut tested = 0;
        for case in 0..150 {
            let n = 2 + (next() % 14) as usize;
            let mut g = DiGraph::new(n, 0);
            let mut parent = vec![0u32; n];
            for v in 1..n as NodeId {
                let p = (next() % v as u64) as NodeId;
                parent[v as usize] = p;
                g.add_edge(p, v);
            }
            // Back edges to strict tree ancestors.
            for _ in 0..(next() % (n as u64 / 2 + 1)) {
                let mut v = (next() % n as u64) as NodeId;
                // pick a random ancestor
                let mut hops = next() % 4;
                let src = v;
                while v != 0 && hops > 0 {
                    v = parent[v as usize];
                    hops -= 1;
                }
                g.add_edge(src, v);
            }
            let Some(lf) = LoopForestChecker::compute(&g) else {
                continue;
            };
            tested += 1;
            let bitset = LivenessChecker::compute(&g);
            for def in 0..n as NodeId {
                for u in 0..n as NodeId {
                    for q in 0..n as NodeId {
                        assert_eq!(
                            bitset.is_live_in(def, &[u], q),
                            lf.is_live_in(def, &[u], q),
                            "case {case}: live-in def={def} use={u} q={q}\n{g:?}"
                        );
                        assert_eq!(
                            bitset.is_live_out(def, &[u], q),
                            lf.is_live_out(def, &[u], q),
                            "case {case}: live-out def={def} use={u} q={q}\n{g:?}"
                        );
                    }
                }
            }
        }
        assert!(tested >= 100, "only {tested} reducible samples");
    }

    #[test]
    fn memory_is_a_third_of_the_bitset_engine() {
        // The bitset engine keeps three matrices of this shape (R, T,
        // and the transposed R its fused query kernel scans); the loop
        // forest checker stores only R.
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let bitset = LivenessChecker::compute(&g);
        let lf = LoopForestChecker::compute(&g).expect("reducible");
        assert_eq!(lf.matrix_heap_bytes() * 3, bitset.matrix_heap_bytes());
    }
}
