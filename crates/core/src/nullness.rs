//! Dominance-based nullness / definite-initialization analysis.
//!
//! This is the workspace's second sparse analysis, built per the
//! parameterized construction of Tavares, Boissinot, Pereira &
//! Rastello: a **variable-independent, shape-level precomputation**
//! (dominator tree + dominance frontiers over the CFG) plus **sparse
//! forward propagation along def-use chains** at query time. The split
//! mirrors the liveness checker exactly — [`NullnessArtifact`] is to
//! this analysis what `Precomputation` is to liveness: it survives all
//! program edits except CFG changes, so the engine can cache and
//! persist it per CFG fingerprint.
//!
//! Two facts are answered:
//!
//! * **Nullness** — a three-valued forward constant-style lattice per
//!   SSA value: definitely zero ([`Nullness::Null`]), definitely
//!   non-zero ([`Nullness::NonNull`]), or unknown
//!   ([`Nullness::Maybe`]). Facts propagate sparsely value-to-value;
//!   merge points need no special casing because this IR's block
//!   parameters already sit exactly where the sparse construction
//!   would split live ranges — at the iterated dominance frontiers of
//!   the definitions they merge ([`NullnessArtifact::fact_split_blocks`]
//!   exposes that frontier closure from the persisted matrix).
//! * **Definite initialization** — "has `v`'s definition executed on
//!   every path reaching the entry of block `q`?" In strict SSA this
//!   is a pure dominance query (see
//!   [`NullnessArtifact::definitely_initialized_at_entry`]), which is
//!   why the artifact carries the dominator tree.
//!
//! The solver treats every reachable block as executable (no
//! conditional-branch pruning), so the result is the least fixpoint of
//! monotone transfer functions over a finite lattice — independent of
//! iteration order. That is the property the differential suites lean
//! on: the dense iterative referee in `fastlive-dataflow` must agree
//! bit-for-bit.

use fastlive_bitset::BitMatrix;
use fastlive_cfg::{DfsTree, DomTree, DominanceFrontiers};
use fastlive_graph::{Cfg, NodeId};
use fastlive_ir::{BinaryOp, Block, Function, InstData, UnaryOp, Value, ValueDef};

/// The public three-valued nullness verdict for an SSA value.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Nullness {
    /// The value is zero on every execution.
    Null,
    /// The value is non-zero on every execution.
    NonNull,
    /// The analysis cannot prove either.
    Maybe,
}

impl Nullness {
    /// Stable lowercase label (used by telemetry and bench output).
    pub fn name(self) -> &'static str {
        match self {
            Nullness::Null => "null",
            Nullness::NonNull => "non_null",
            Nullness::Maybe => "maybe",
        }
    }
}

impl std::fmt::Display for Nullness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Internal four-valued lattice: `Top` (no information yet — the value
/// of an unevaluated or unreachable definition) refines downward to a
/// concrete fact and joins up to `Maybe`.
///
/// Order: `Top < {Null, NonNull} < Maybe`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Fact {
    Top,
    Null,
    NonNull,
    Maybe,
}

impl Fact {
    /// Least upper bound.
    fn join(self, other: Fact) -> Fact {
        match (self, other) {
            (Fact::Top, x) | (x, Fact::Top) => x,
            (a, b) if a == b => a,
            _ => Fact::Maybe,
        }
    }

    /// Collapse to the public verdict: residual `Top` (values defined
    /// in unreachable code) reports as `Maybe`.
    fn finalize(self) -> Nullness {
        match self {
            Fact::Null => Nullness::Null,
            Fact::NonNull => Nullness::NonNull,
            Fact::Top | Fact::Maybe => Nullness::Maybe,
        }
    }
}

/// The shape-level precomputation for nullness/definite-init: the
/// dominance-frontier relation as a dense bit matrix (persisted by the
/// engine's disk tier) plus the dominator tree (cheap, rebuilt from
/// the canonical graph on revive — never persisted, like the liveness
/// checker's derived `rt` matrix).
#[derive(Clone, Debug)]
pub struct NullnessArtifact {
    /// `df.contains(b, f)` ⇔ `f ∈ DF(b)`. Square: `num_blocks ×
    /// num_blocks`.
    df: BitMatrix,
    /// Dominator tree over the same graph; derived, not persisted.
    dom: DomTree,
}

impl NullnessArtifact {
    /// Computes the artifact from a CFG (typically the fingerprint's
    /// canonical graph; any graph with the same shape gives identical
    /// query answers, because dominance is successor-order
    /// independent).
    pub fn compute<G: Cfg>(g: &G) -> Self {
        let dfs = DfsTree::compute(g);
        let dom = DomTree::compute(g, &dfs);
        let fronts = DominanceFrontiers::compute(g, &dom);
        let n = g.num_nodes();
        let mut df = BitMatrix::new(n, n);
        for b in 0..n as NodeId {
            for &f in fronts.of(b) {
                df.set(b, f);
            }
        }
        NullnessArtifact { df, dom }
    }

    /// Revives an artifact from its persisted frontier matrix: rebuilds
    /// the dominator tree from the canonical graph and validates the
    /// matrix dimensions against it. `None` means the payload does not
    /// fit the graph and the caller must recompute.
    pub fn from_parts<G: Cfg>(g: &G, df: BitMatrix) -> Option<Self> {
        if df.rows() != g.num_nodes() || df.cols() != g.num_nodes() {
            return None;
        }
        let dfs = DfsTree::compute(g);
        let dom = DomTree::compute(g, &dfs);
        Some(NullnessArtifact { df, dom })
    }

    /// The persisted dominance-frontier matrix.
    pub fn df(&self) -> &BitMatrix {
        &self.df
    }

    /// The (derived) dominator tree.
    pub fn dom(&self) -> &DomTree {
        &self.dom
    }

    /// Number of blocks in the underlying shape.
    pub fn num_blocks(&self) -> usize {
        self.df.rows()
    }

    /// `true` when this artifact still matches `func`'s block count —
    /// the cheap staleness probe mirroring
    /// [`FunctionLiveness::is_current_for`](crate::FunctionLiveness::is_current_for).
    pub fn is_current_for(&self, func: &Function) -> bool {
        self.df.rows() == func.num_blocks()
    }

    /// The iterated dominance frontier of `v`'s definition block — the
    /// exact set of blocks where the sparse construction splits `v`'s
    /// fact (in this block-parameter IR, where a φ merging `v` would
    /// live). Computed by closure over the persisted matrix. Sorted
    /// ascending; empty for values defined in unreachable code.
    pub fn fact_split_blocks(&self, func: &Function, v: Value) -> Vec<Block> {
        let d = func.def_block(v).as_u32();
        if !self.dom.is_reachable(d) {
            return Vec::new();
        }
        let n = self.df.rows() as NodeId;
        let mut in_set = vec![false; n as usize];
        let mut work = vec![d];
        let mut out = Vec::new();
        while let Some(b) = work.pop() {
            for f in self.df.row_iter(b) {
                if !in_set[f as usize] {
                    in_set[f as usize] = true;
                    out.push(Block::from_index(f as usize));
                    work.push(f);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Definite initialization: has `v`'s definition executed on
    /// *every* path from function entry to the entry of block `q`?
    ///
    /// In strict SSA with atomic blocks this is dominance:
    ///
    /// * `q` unreachable → `false` (no path reaches it at all);
    /// * `v` a block parameter of `d` → `true` iff `d` dominates `q`
    ///   (parameters bind on block entry, so `d == q` counts);
    /// * `v` an instruction result in `d` → `true` iff `d` *strictly*
    ///   dominates `q` (at `q`'s own entry the defining instruction
    ///   has not run yet; a loop-header def reaches its own entry only
    ///   along back edges, never along the path that first enters the
    ///   loop).
    pub fn definitely_initialized_at_entry(&self, func: &Function, v: Value, q: Block) -> bool {
        let qn = q.as_u32();
        if !self.dom.is_reachable(qn) {
            return false;
        }
        let d = func.def_block(v).as_u32();
        if !self.dom.is_reachable(d) {
            return false;
        }
        match func.value_def(v) {
            ValueDef::Param { .. } => self.dom.dominates(d, qn),
            ValueDef::Inst(_) => d != qn && self.dom.dominates(d, qn),
        }
    }

    /// Solves the per-value nullness facts for `func` by sparse
    /// forward propagation along def-use chains. `func` must have the
    /// same block count as the artifact's shape
    /// ([`is_current_for`](Self::is_current_for)).
    pub fn solve(&self, func: &Function) -> NullnessFacts {
        debug_assert!(
            self.is_current_for(func),
            "artifact is stale for this function"
        );
        let n = func.num_values();
        let mut fact = vec![Fact::Top; n];

        // Deterministic seeding: every value defined in a reachable
        // block, in dominance-preorder of its definition block, block
        // parameters before instruction results. The fixpoint itself
        // is order-independent (monotone functions, finite lattice);
        // the order only bounds the number of relaxations.
        let mut list: std::collections::VecDeque<Value> = std::collections::VecDeque::new();
        let mut on_list = vec![false; n];
        for &bn in self.dom.preorder() {
            let b = Block::from_index(bn as usize);
            for &p in func.block_params(b) {
                list.push_back(p);
                on_list[p.index()] = true;
            }
            for &i in func.block_insts(b) {
                if let Some(r) = func.inst_result(i) {
                    list.push_back(r);
                    on_list[r.index()] = true;
                }
            }
        }

        while let Some(v) = list.pop_front() {
            on_list[v.index()] = false;
            let new = self.eval(func, &fact, v);
            if new == fact[v.index()] {
                continue;
            }
            fact[v.index()] = new;
            // Push the dependents: instruction results whose operands
            // include v, and block parameters fed by v as a branch
            // argument.
            for &u in func.uses(v) {
                if let Some(r) = func.inst_result(u) {
                    if !on_list[r.index()] {
                        on_list[r.index()] = true;
                        list.push_back(r);
                    }
                }
                for call in func.inst_data(u).branch_targets() {
                    for (i, &a) in call.args.iter().enumerate() {
                        if a != v {
                            continue;
                        }
                        let p = func.block_params(call.block)[i];
                        if !on_list[p.index()] {
                            on_list[p.index()] = true;
                            list.push_back(p);
                        }
                    }
                }
            }
        }

        NullnessFacts {
            facts: fact.into_iter().map(Fact::finalize).collect(),
        }
    }

    /// One transfer-function evaluation of `v` under the current
    /// environment.
    fn eval(&self, func: &Function, fact: &[Fact], v: Value) -> Fact {
        match func.value_def(v) {
            ValueDef::Param { block, index } => {
                if block == func.entry_block() {
                    // Function parameters: unconstrained inputs.
                    return Fact::Maybe;
                }
                // Merge point: join the facts of every branch argument
                // arriving from a *reachable* predecessor. (These joins
                // are exactly the dominance-frontier splits of the
                // sparse construction — see `fact_split_blocks`.)
                let mut acc = Fact::Top;
                for &p in func.preds(block.as_u32()) {
                    if !self.dom.is_reachable(p) {
                        continue;
                    }
                    let pb = Block::from_index(p as usize);
                    let Some(term) = func.terminator(pb) else {
                        continue;
                    };
                    for call in func.inst_data(term).branch_targets() {
                        if call.block == block {
                            acc = acc.join(fact[call.args[index as usize].index()]);
                        }
                    }
                }
                acc
            }
            ValueDef::Inst(i) => transfer(func.inst_data(i), |x| fact[x.index()]),
        }
    }
}

/// The solved nullness facts of one function: one [`Nullness`] per SSA
/// value, indexed by value id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NullnessFacts {
    facts: Vec<Nullness>,
}

impl NullnessFacts {
    /// The verdict for `v`.
    pub fn of(&self, v: Value) -> Nullness {
        self.facts[v.index()]
    }

    /// Number of values covered.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// `true` when the function had no values.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// The transfer function of one instruction, evaluated over the
/// wrapping two's-complement semantics of [`UnaryOp::eval`] /
/// [`BinaryOp::eval`] (`sdiv` by zero yields 0, `srem` by zero yields
/// the dividend, `MIN / -1` wraps). Every arm is monotone in each
/// operand, with `Top` as bottom.
fn transfer(data: &InstData, env: impl Fn(Value) -> Fact) -> Fact {
    use Fact::{Maybe, NonNull, Null, Top};
    match data {
        InstData::IntConst { imm } => {
            if *imm == 0 {
                Null
            } else {
                NonNull
            }
        }
        InstData::Unary { op, arg } => {
            let a = env(*arg);
            match op {
                // `copy` preserves the value; `ineg` preserves
                // zero-ness (wrapping: -MIN == MIN, still non-zero).
                UnaryOp::Copy | UnaryOp::Ineg => a,
                // !0 == -1 is non-zero; !x for non-zero x may be zero
                // (x == -1).
                UnaryOp::Bnot => match a {
                    Top => Top,
                    Null => NonNull,
                    _ => Maybe,
                },
            }
        }
        InstData::Binary { op, args: [x, y] } => {
            let (a, b) = (env(*x), env(*y));
            if a == Top || b == Top {
                // Syntactic tautologies are constants even over Top —
                // x == x is 1 regardless of x's value.
                return match op {
                    BinaryOp::IcmpEq | BinaryOp::IcmpSle if x == y => NonNull,
                    BinaryOp::IcmpNe | BinaryOp::IcmpSlt if x == y => Null,
                    _ => Top,
                };
            }
            match op {
                // 0±0 = 0; 0±n and n±0 stay non-zero; n±m may wrap to
                // anything.
                BinaryOp::Iadd | BinaryOp::Isub => match (a, b) {
                    (Null, Null) => Null,
                    (Null, NonNull) | (NonNull, Null) => NonNull,
                    _ => Maybe,
                },
                // 0·x = x·0 = 0, even when the other side is unknown;
                // n·m may wrap to zero.
                BinaryOp::Imul => {
                    if a == Null || b == Null {
                        Null
                    } else {
                        Maybe
                    }
                }
                // Total division: 0/x = 0 and x/0 = 0 by definition.
                BinaryOp::Sdiv => {
                    if a == Null || b == Null {
                        Null
                    } else {
                        Maybe
                    }
                }
                // 0%x = 0; x%0 = x by the total semantics; MIN%-1 = 0,
                // so NonNull%NonNull is only Maybe.
                BinaryOp::Srem => {
                    if a == Null {
                        Null
                    } else if b == Null {
                        a
                    } else {
                        Maybe
                    }
                }
                BinaryOp::Band => {
                    if a == Null || b == Null {
                        Null
                    } else {
                        Maybe
                    }
                }
                // x|y keeps every set bit of either side.
                BinaryOp::Bor => {
                    if a == NonNull || b == NonNull {
                        NonNull
                    } else if a == Null {
                        b
                    } else if b == Null {
                        a
                    } else {
                        Maybe
                    }
                }
                // 0^y = y, x^0 = x; n^n may cancel to zero.
                BinaryOp::Bxor => {
                    if a == Null {
                        b
                    } else if b == Null {
                        a
                    } else {
                        Maybe
                    }
                }
                BinaryOp::IcmpEq => {
                    if x == y {
                        NonNull
                    } else {
                        match (a, b) {
                            (Null, Null) => NonNull,
                            (Null, NonNull) | (NonNull, Null) => Null,
                            _ => Maybe,
                        }
                    }
                }
                BinaryOp::IcmpNe => {
                    if x == y {
                        Null
                    } else {
                        match (a, b) {
                            (Null, Null) => Null,
                            (Null, NonNull) | (NonNull, Null) => NonNull,
                            _ => Maybe,
                        }
                    }
                }
                BinaryOp::IcmpSlt => {
                    if x == y {
                        Null
                    } else {
                        match (a, b) {
                            (Null, Null) => Null,
                            _ => Maybe,
                        }
                    }
                }
                BinaryOp::IcmpSle => {
                    if x == y {
                        NonNull
                    } else {
                        match (a, b) {
                            (Null, Null) => NonNull,
                            _ => Maybe,
                        }
                    }
                }
            }
        }
        // Terminators produce no result; this arm is never reached
        // through `eval` (only values with a defining instruction are
        // evaluated).
        InstData::Jump { .. } | InstData::Brif { .. } | InstData::Return { .. } => Fact::Maybe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::{BinaryOp, Function};

    fn artifact(func: &Function) -> NullnessArtifact {
        NullnessArtifact::compute(func)
    }

    #[test]
    fn constants_and_straight_line_arithmetic() {
        let mut f = Function::new("t");
        let b0 = f.add_block();
        let zero = f.ins(b0).iconst(0);
        let one = f.ins(b0).iconst(1);
        let sum = f.ins(b0).iadd(zero, one); // 0 + 1: non-null
        let prod = f.ins(b0).binary(BinaryOp::Imul, zero, sum); // 0 * x: null
        let wrap = f.ins(b0).iadd(one, one); // 1 + 1 may wrap in general
        f.ins(b0).ret(vec![prod]);

        let art = artifact(&f);
        let facts = art.solve(&f);
        assert_eq!(facts.of(zero), Nullness::Null);
        assert_eq!(facts.of(one), Nullness::NonNull);
        assert_eq!(facts.of(sum), Nullness::NonNull);
        assert_eq!(facts.of(prod), Nullness::Null);
        assert_eq!(facts.of(wrap), Nullness::Maybe);
    }

    #[test]
    fn params_are_maybe_and_tautologies_are_constant() {
        let mut f = Function::new("t");
        let b0 = f.add_block();
        let p = f.append_block_param(b0);
        let same = f.ins(b0).binary(BinaryOp::IcmpEq, p, p); // x == x: 1
        let diff = f.ins(b0).binary(BinaryOp::IcmpNe, p, p); // x != x: 0
        f.ins(b0).ret(vec![same]);

        let art = artifact(&f);
        let facts = art.solve(&f);
        assert_eq!(facts.of(p), Nullness::Maybe);
        assert_eq!(facts.of(same), Nullness::NonNull);
        assert_eq!(facts.of(diff), Nullness::Null);
    }

    #[test]
    fn merge_point_joins_split_facts() {
        // entry: brif p, then(1), else(0); merge(m) — m joins NonNull
        // with Null to Maybe; a second diamond passing 0 on both edges
        // joins to Null.
        let mut f = Function::new("t");
        let b0 = f.add_block();
        let p = f.append_block_param(b0);
        let bt = f.add_block();
        let be = f.add_block();
        let bm = f.add_block();
        let m = f.append_block_param(bm);
        let n = f.append_block_param(bm);

        let zero = f.ins(b0).iconst(0);
        f.ins(b0).brif(p, bt, vec![], be, vec![]);
        let one = f.ins(bt).iconst(1);
        f.ins(bt).jump(bm, vec![one, zero]);
        let zero_e = f.ins(be).iconst(0);
        f.ins(be).jump(bm, vec![zero_e, zero]);
        f.ins(bm).ret(vec![m]);

        let art = artifact(&f);
        let facts = art.solve(&f);
        assert_eq!(facts.of(m), Nullness::Maybe); // NonNull ⊔ Null
        assert_eq!(facts.of(n), Nullness::Null); // Null ⊔ Null
        assert_eq!(
            art.fact_split_blocks(&f, one),
            vec![bm],
            "the diamond's merge block is the definition's dominance frontier"
        );
    }

    #[test]
    fn loop_carried_facts_reach_fixpoint() {
        // i starts at 1 and is multiplied by 2 each trip: stays
        // non-null through the back edge. j starts at 0 and has 0
        // added: stays null.
        let mut f = Function::new("t");
        let b0 = f.add_block();
        let p = f.append_block_param(b0);
        let bh = f.add_block();
        let i = f.append_block_param(bh);
        let j = f.append_block_param(bh);
        let bx = f.add_block();

        let one = f.ins(b0).iconst(1);
        let zero = f.ins(b0).iconst(0);
        f.ins(b0).jump(bh, vec![one, zero]);
        let two = f.ins(bh).iconst(2);
        let i2 = f.ins(bh).binary(BinaryOp::Imul, i, two);
        let j2 = f.ins(bh).iadd(j, zero);
        f.ins(bh).brif(p, bh, vec![i2, j2], bx, vec![]);
        f.ins(bx).ret(vec![i]);

        let art = artifact(&f);
        let facts = art.solve(&f);
        assert_eq!(
            facts.of(j),
            Nullness::Null,
            "0 + 0 stays null around the loop"
        );
        assert_eq!(facts.of(j2), Nullness::Null);
        assert_eq!(
            facts.of(i),
            Nullness::Maybe,
            "NonNull * NonNull may wrap to zero, so the loop-carried fact widens"
        );
    }

    #[test]
    fn definite_initialization_is_dominance() {
        // b0 -> b1 -> b3, b0 -> b2 -> b3; defs in b1 do not reach b3's
        // entry on the b2 path.
        let mut f = Function::new("t");
        let b0 = f.add_block();
        let p = f.append_block_param(b0);
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let early = f.ins(b0).iconst(7);
        f.ins(b0).brif(p, b1, vec![], b2, vec![]);
        let only_then = f.ins(b1).iconst(1);
        f.ins(b1).jump(b3, vec![]);
        f.ins(b2).jump(b3, vec![]);
        let late = f.ins(b3).iconst(2);
        f.ins(b3).ret(vec![late]);

        let art = artifact(&f);
        assert!(art.definitely_initialized_at_entry(&f, early, b3));
        assert!(art.definitely_initialized_at_entry(&f, p, b3));
        assert!(!art.definitely_initialized_at_entry(&f, only_then, b3));
        // A block's own instruction defs are not initialized at its
        // *entry*; its params are.
        assert!(!art.definitely_initialized_at_entry(&f, late, b3));
        assert!(art.definitely_initialized_at_entry(&f, p, b0));
        assert!(!art.definitely_initialized_at_entry(&f, early, b0));
    }

    #[test]
    fn unreachable_defs_are_maybe_and_never_initialized() {
        let mut f = Function::new("t");
        let b0 = f.add_block();
        let bu = f.add_block(); // never branched to
        f.ins(b0).ret(vec![]);
        let ghost = f.ins(bu).iconst(3);
        f.ins(bu).ret(vec![ghost]);

        let art = artifact(&f);
        let facts = art.solve(&f);
        assert_eq!(facts.of(ghost), Nullness::Maybe);
        assert!(!art.definitely_initialized_at_entry(&f, ghost, b0));
        assert!(art.fact_split_blocks(&f, ghost).is_empty());
    }

    #[test]
    fn revive_round_trip_validates_dimensions() {
        let mut f = Function::new("t");
        let b0 = f.add_block();
        f.ins(b0).ret(vec![]);
        let art = artifact(&f);
        let revived = NullnessArtifact::from_parts(&f, art.df().clone()).expect("same graph");
        assert_eq!(revived.df(), art.df());
        let wrong = BitMatrix::new(3, 3);
        assert!(NullnessArtifact::from_parts(&f, wrong).is_none());
    }
}
