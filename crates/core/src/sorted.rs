//! The sorted-array storage variant suggested by §6.1 and §8 of the
//! paper ("future implementations could use sorted arrays instead of
//! bitsets to save space in case of larger CFGs").

use fastlive_bitset::SortedSet;
use fastlive_cfg::{DfsTree, DomTree, EdgeClass};
use fastlive_graph::{Cfg, NodeId};

/// A liveness checker storing `R_v` and `T_v` as sorted arrays instead
/// of bitsets.
///
/// Memory is proportional to the total number of *set elements* rather
/// than `|V|²` bits, which moves the §6.1 break-even point for large
/// CFGs: the `memory_breakeven` benchmark binary compares the two
/// representations across block counts. Queries use binary search
/// (`O(log |R_t|)` per use test) instead of bit probes, mirroring the
/// trade-off the paper describes for LAO's sorted-array live sets.
///
/// Answers are bit-for-bit identical to
/// [`LivenessChecker`](crate::LivenessChecker); the test suite checks
/// this on randomized graphs.
///
/// # Examples
///
/// ```
/// use fastlive_core::SortedLivenessChecker;
/// use fastlive_graph::DiGraph;
///
/// let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
/// let live = SortedLivenessChecker::compute(&g);
/// assert!(live.is_live_in(0, &[2], 1));
/// assert!(!live.is_live_in(0, &[2], 3));
/// ```
#[derive(Clone, Debug)]
pub struct SortedLivenessChecker {
    dfs: DfsTree,
    dom: DomTree,
    /// `R` rows indexed by dominance-preorder number, elements are
    /// numbers too.
    r: Vec<SortedSet>,
    /// `T` rows (globally filtered like the bitset engine).
    t: Vec<SortedSet>,
    maxnum_by_num: Vec<u32>,
    is_back_target: Vec<bool>,
    reducible: bool,
}

impl SortedLivenessChecker {
    /// Runs the precomputation with sorted-array propagation throughout
    /// (peak memory stays proportional to the stored result).
    pub fn compute<G: Cfg>(g: &G) -> Self {
        let dfs = DfsTree::compute(g);
        let dom = DomTree::compute(g, &dfs);
        let n = dom.num_reachable();
        let num = |v: NodeId| dom.num(v);

        // R: postorder merge propagation.
        let mut r: Vec<SortedSet> = vec![SortedSet::new(); n];
        for &v in dfs.postorder() {
            let vn = num(v);
            let mut row = SortedSet::from_sorted(vec![vn]);
            for (i, &w) in g.succs(v).iter().enumerate() {
                if dfs.edge_class_at(v, i) != EdgeClass::Back {
                    row.union_with(&r[num(w) as usize]);
                }
            }
            row.shrink_to_fit();
            r[vn as usize] = row;
        }

        // Phase 1: T of back-edge targets in DFS-preorder order (Eq. 1).
        let mut targets: Vec<NodeId> = dfs.back_edges().iter().map(|&(_, t)| t).collect();
        targets.sort_unstable_by_key(|&t| dfs.pre(t));
        targets.dedup();
        let mut theader: Vec<Option<SortedSet>> = vec![None; g.num_nodes()];
        for &tgt in &targets {
            let tn = num(tgt);
            let mut row = SortedSet::from_sorted(vec![tn]);
            for &(s2, t2) in dfs.back_edges() {
                if r[tn as usize].contains(num(s2)) && !r[tn as usize].contains(num(t2)) {
                    row.union_with(theader[t2 as usize].as_ref().expect("Theorem 3 order"));
                }
            }
            theader[tgt as usize] = Some(row);
        }

        // Phases 2+3: seed sources, propagate in postorder; then the
        // global filter (T_v \ R_v) ∪ {v}.
        let mut seeds: Vec<Vec<NodeId>> = vec![Vec::new(); g.num_nodes()];
        for &(s, tgt) in dfs.back_edges() {
            seeds[s as usize].push(tgt);
        }
        let mut t: Vec<SortedSet> = vec![SortedSet::new(); n];
        for &v in dfs.postorder() {
            let vn = num(v);
            let mut row = SortedSet::new();
            for (i, &w) in g.succs(v).iter().enumerate() {
                if dfs.edge_class_at(v, i) != EdgeClass::Back {
                    row.union_with(&t[num(w) as usize]);
                }
            }
            for &tgt in &seeds[v as usize] {
                row.union_with(theader[tgt as usize].as_ref().expect("seeded target"));
            }
            t[vn as usize] = row;
        }
        for &v in dfs.preorder() {
            let vn = num(v);
            let kept: Vec<u32> = t[vn as usize]
                .iter()
                .filter(|&x| x != vn && !r[vn as usize].contains(x))
                .chain(std::iter::once(vn))
                .collect();
            let mut row = SortedSet::from_unsorted(kept);
            row.shrink_to_fit();
            t[vn as usize] = row;
        }

        let mut is_back_target = vec![false; g.num_nodes()];
        for &(_, tgt) in dfs.back_edges() {
            is_back_target[tgt as usize] = true;
        }
        let reducible = dfs.back_edges().iter().all(|&(s, tt)| dom.dominates(tt, s));
        let mut maxnum_by_num = vec![0u32; n];
        for i in 0..n as u32 {
            maxnum_by_num[i as usize] = dom.maxnum(dom.node_at_num(i));
        }

        SortedLivenessChecker {
            dfs,
            dom,
            r,
            t,
            maxnum_by_num,
            is_back_target,
            reducible,
        }
    }

    /// `true` if the CFG is reducible.
    pub fn is_reducible(&self) -> bool {
        self.reducible
    }

    fn reachable(&self, v: NodeId) -> bool {
        self.dom.is_reachable(v)
    }

    /// Algorithm 1/3 with sorted-array probes.
    pub fn is_live_in(&self, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
        self.query(def, uses, q, None)
    }

    /// Algorithm 2 with sorted-array probes.
    pub fn is_live_out(&self, def: NodeId, uses: &[NodeId], q: NodeId) -> bool {
        if !self.reachable(def) || !self.reachable(q) {
            return false;
        }
        if def == q {
            return uses.iter().any(|&u| u != q);
        }
        self.query(def, uses, q, Some(q))
    }

    /// Shared candidate loop. `live_out_q` carries Algorithm 2's `q`
    /// for the `U \ {q}` special case.
    fn query(&self, def: NodeId, uses: &[NodeId], q: NodeId, live_out_q: Option<NodeId>) -> bool {
        if !self.reachable(def) || !self.reachable(q) {
            return false;
        }
        let defn = self.dom.num(def);
        let qn = self.dom.num(q);
        let max_dom = self.dom.maxnum(def);
        if qn <= defn || max_dom < qn {
            return false;
        }
        let trow = &self.t[qn as usize];
        let mut from = defn + 1;
        while let Some(tn) = trow.next_at_least(from) {
            if tn > max_dom {
                break;
            }
            let rrow = &self.r[tn as usize];
            let drop_q = live_out_q.is_some_and(|oq| tn == qn && !self.is_back_target[oq as usize]);
            for &u in uses {
                if drop_q && u == q {
                    continue;
                }
                if self.reachable(u) && rrow.contains(self.dom.num(u)) {
                    return true;
                }
            }
            from = self.maxnum_by_num[tn as usize] + 1;
        }
        false
    }

    /// Heap bytes of the stored `R`/`T` arrays (cardinality-
    /// proportional; compare with
    /// [`LivenessChecker::matrix_heap_bytes`](crate::LivenessChecker::matrix_heap_bytes)).
    pub fn set_heap_bytes(&self) -> usize {
        self.r.iter().map(SortedSet::heap_bytes).sum::<usize>()
            + self.t.iter().map(SortedSet::heap_bytes).sum::<usize>()
    }

    /// The DFS tree.
    pub fn dfs(&self) -> &DfsTree {
        &self.dfs
    }

    /// The dominator tree.
    pub fn dom(&self) -> &DomTree {
        &self.dom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LivenessChecker;
    use fastlive_graph::DiGraph;

    #[test]
    fn matches_bitset_engine_on_random_graphs() {
        let mut state = 0x6c078965u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..120 {
            let n = 2 + (next() % 12) as usize;
            let mut g = DiGraph::new(n, 0);
            for v in 1..n as NodeId {
                g.add_edge((next() % v as u64) as NodeId, v);
            }
            for _ in 0..(next() % (2 * n as u64 + 1)) {
                g.add_edge((next() % n as u64) as NodeId, (next() % n as u64) as NodeId);
            }
            let bitset = LivenessChecker::compute(&g);
            let sorted = SortedLivenessChecker::compute(&g);
            assert_eq!(bitset.is_reducible(), sorted.is_reducible());
            for def in 0..n as NodeId {
                for u in 0..n as NodeId {
                    for q in 0..n as NodeId {
                        assert_eq!(
                            bitset.is_live_in(def, &[u], q),
                            sorted.is_live_in(def, &[u], q),
                            "case {case}: live-in def={def} use={u} q={q}\n{g:?}"
                        );
                        assert_eq!(
                            bitset.is_live_out(def, &[u], q),
                            sorted.is_live_out(def, &[u], q),
                            "case {case}: live-out def={def} use={u} q={q}\n{g:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memory_scales_with_cardinality_not_universe() {
        // A long chain: every R_v averages n/2 elements, so the sorted
        // representation is ~n²/2 * 4 bytes ... the bitset one is
        // n * ceil(n/64) * 8. For small sparse graphs sorted wins.
        // Two disjoint long branches: each node reaches only its own
        // short suffix, cardinalities stay tiny.
        let n = 200u32;
        let mut g = DiGraph::new(n as usize, 0);
        // Star: entry -> 199 leaves. R sets have 1-200 elements... keep
        // it truly sparse: entry -> leaf i, no other edges.
        for v in 1..n {
            g.add_edge(0, v);
        }
        let bitset = LivenessChecker::compute(&g);
        let sorted = SortedLivenessChecker::compute(&g);
        // Bitset: 3 matrices (R, T, transposed R) * 200 rows, each row
        // padded from ceil(200/64) = 4 words to a full 8-word cache
        // line, plus up to 7 words of alignment slack per matrix.
        assert_eq!(bitset.matrix_heap_bytes(), 3 * (200 * 8 + 7) * 8);
        // Sorted: R holds 200 + 199 elements, T 200 singletons — about
        // 2.4 KB against 12.8 KB for the bitsets.
        assert!(sorted.set_heap_bytes() < bitset.matrix_heap_bytes() / 4);
    }

    #[test]
    fn figure3_queries_match() {
        let g = DiGraph::from_edges(
            11,
            0,
            &[
                (0, 1),
                (1, 2),
                (1, 10),
                (2, 3),
                (2, 7),
                (3, 4),
                (4, 5),
                (5, 6),
                (5, 4),
                (6, 1),
                (7, 8),
                (8, 9),
                (8, 5),
                (9, 7),
                (9, 10),
            ],
        );
        let live = SortedLivenessChecker::compute(&g);
        assert!(live.is_live_in(2, &[8], 9));
        assert!(live.is_live_in(2, &[4], 9));
        assert!(!live.is_live_in(1, &[3], 9));
        assert!(!live.is_live_in(2, &[8], 3));
    }
}
