//! [`FunctionLiveness`]: the liveness checker bound to an
//! [`fastlive_ir::Function`], plus program-point-granularity queries.

use fastlive_ir::{Block, Function, Inst, ProgramPoint, Value};

use crate::checker::LivenessChecker;
use crate::provider::PointError;

/// Liveness queries for the SSA values of a [`Function`].
///
/// Construction runs the paper's variable-independent precomputation on
/// the function's CFG. Queries read the function's *current* def-use
/// chains, so the `FunctionLiveness` stays valid while instructions,
/// values and uses are added or removed — the paper's headline property.
/// Only CFG edits (adding blocks or changing terminator targets)
/// invalidate it; [`is_current_for`](Self::is_current_for) detects the
/// block-count part of that cheaply and queries debug-assert it.
///
/// # Examples
///
/// ```
/// use fastlive_core::FunctionLiveness;
/// use fastlive_ir::parse_function;
///
/// let mut f = parse_function(
///     "function %loop { block0(v0):
///          v1 = iconst 0
///          jump block1(v1)
///      block1(v2):
///          v3 = iconst 1
///          v4 = iadd v2, v3
///          v5 = icmp_slt v4, v0
///          brif v5, block1(v4), block2
///      block2:
///          return v4 }",
/// )?;
/// let live = FunctionLiveness::compute(&f);
/// let v0 = f.params()[0];
/// let block1 = f.blocks().nth(1).unwrap();
///
/// // The loop bound v0 is live around the whole loop...
/// assert!(live.is_live_in(&f, v0, block1));
/// assert!(live.is_live_out(&f, v0, block1));
///
/// // ... and stays correctly tracked after inserting an instruction,
/// // without recomputing anything.
/// let block2 = f.blocks().nth(2).unwrap();
/// let v4 = f.value("v4").unwrap();
/// f.insert_inst(
///     block2,
///     0,
///     fastlive_ir::InstData::Unary { op: fastlive_ir::UnaryOp::Ineg, arg: v4 },
/// );
/// assert!(live.is_live_in(&f, v4, block2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct FunctionLiveness {
    checker: LivenessChecker,
}

impl FunctionLiveness {
    /// Runs the precomputation on the function's CFG.
    pub fn compute(func: &Function) -> Self {
        FunctionLiveness {
            checker: LivenessChecker::compute(func),
        }
    }

    /// Wraps an already-computed checker — the reuse hook for engines
    /// that cache precomputations by CFG shape. Because the
    /// precomputation never reads instructions, a checker computed for
    /// **any** function with an identical CFG (same block count, same
    /// successor lists) answers queries for this one exactly; queries
    /// read the def-use chains of whichever function they are handed.
    pub fn from_checker(checker: LivenessChecker) -> Self {
        FunctionLiveness { checker }
    }

    /// Unwraps the graph-level checker (e.g. to move it into a cache).
    pub fn into_checker(self) -> LivenessChecker {
        self.checker
    }

    /// The underlying graph-level checker.
    pub fn checker(&self) -> &LivenessChecker {
        &self.checker
    }

    /// `true` while the function still has the block count the
    /// precomputation saw. (Necessary but not sufficient: rewiring
    /// terminators without adding blocks also invalidates the checker.)
    pub fn is_current_for(&self, func: &Function) -> bool {
        func.num_blocks() == self.checker.dfs().num_nodes()
    }

    /// Is `v` live-in at block `q` (Definition 2 / Algorithm 3)?
    ///
    /// Uses are taken from the live def-use chain: every instruction
    /// currently using `v`, attributed to its block (which, for branch
    /// arguments, is the predecessor — Definition 1).
    pub fn is_live_in(&self, func: &Function, v: Value, q: Block) -> bool {
        debug_assert!(self.is_current_for(func), "stale checker: the CFG changed");
        let def = func.def_block(v).as_u32();
        // Word-masked interval guard: most negative queries die before
        // the def-use chain is even walked.
        if !self.checker.has_candidates(def, q.as_u32()) {
            return false;
        }
        with_use_nums(&self.checker, func, v, |nums| {
            self.checker.is_live_in_prenums(def, q.as_u32(), nums)
        })
    }

    /// Is `v` live-out at block `q` (Algorithm 2)?
    pub fn is_live_out(&self, func: &Function, v: Value, q: Block) -> bool {
        debug_assert!(self.is_current_for(func), "stale checker: the CFG changed");
        let def = func.def_block(v);
        if def == q {
            // Live-out of the defining block iff some use is elsewhere.
            return func
                .uses(v)
                .iter()
                .any(|&i| func.inst_block(i).expect("use site removed") != q);
        }
        if !self.checker.has_candidates(def.as_u32(), q.as_u32()) {
            return false;
        }
        with_use_nums(&self.checker, func, v, |nums| {
            self.checker
                .is_live_out_prenums(def.as_u32(), q.as_u32(), nums)
        })
    }

    /// Materializes classic per-block live-in/live-out *sets* — for
    /// consumers that want data-flow-shaped results with checker-backed
    /// freshness.
    ///
    /// Routed through one [`batch`](Self::batch) matrix pass rather
    /// than `O(values × blocks)` scalar queries (the 20–60× measured in
    /// `BENCH_query.json`); [`live_sets_scalar`](Self::live_sets_scalar)
    /// keeps the query-loop materialization as the reference both paths
    /// are tested against.
    ///
    /// Returns `(live_in, live_out)`, indexed by block, each a sorted
    /// list of values.
    pub fn live_sets(&self, func: &Function) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
        let batch = self.batch(func);
        let to_values = |vars: Vec<u32>| -> Vec<Value> {
            vars.iter()
                .map(|&v| Value::from_index(v as usize))
                .collect()
        };
        let mut live_in = Vec::with_capacity(func.num_blocks());
        let mut live_out = Vec::with_capacity(func.num_blocks());
        for b in func.blocks() {
            live_in.push(to_values(batch.live_in_vars(b.as_u32())));
            live_out.push(to_values(batch.live_out_vars(b.as_u32())));
        }
        (live_in, live_out)
    }

    /// The scalar materialization [`live_sets`](Self::live_sets)
    /// replaced: one [`is_live_in`](Self::is_live_in) /
    /// [`is_live_out`](Self::is_live_out) query per `(value, block)`
    /// pair. Kept callable as the executable specification of the
    /// batch-backed path (the two must agree bit-for-bit) and for the
    /// break-even benchmarks.
    pub fn live_sets_scalar(&self, func: &Function) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
        let n = func.num_blocks();
        let mut live_in = vec![Vec::new(); n];
        let mut live_out = vec![Vec::new(); n];
        for v in func.values() {
            for b in func.blocks() {
                if self.is_live_in(func, v, b) {
                    live_in[b.index()].push(v);
                }
                if self.is_live_out(func, v, b) {
                    live_out[b.index()].push(v);
                }
            }
        }
        (live_in, live_out)
    }

    /// Materializes live-in/live-out sets for **all** blocks and values
    /// in one batched matrix pass over the precomputation — the dense
    /// counterpart of the scalar queries, with variable `a` of the
    /// result being the value of index `a`
    /// ([`Value::index`](fastlive_ir::Value)). Unlike
    /// [`live_sets`](Self::live_sets) this never loops scalar queries:
    /// cost is `O((E + Σ|T_q|) · V/64)` word operations total.
    ///
    /// The snapshot reads the *current* def-use chains, so unlike the
    /// checker itself it goes stale when instructions change.
    pub fn batch(&self, func: &Function) -> crate::BatchLiveness {
        debug_assert!(self.is_current_for(func), "stale checker: the CFG changed");
        let mut defs = vec![0 as fastlive_graph::NodeId; func.num_values()];
        let mut uses: Vec<(u32, fastlive_graph::NodeId)> = Vec::new();
        for v in func.values() {
            defs[v.index()] = func.def_block(v).as_u32();
            for &inst in func.uses(v) {
                let ub = func.inst_block(inst).expect("use site removed");
                uses.push((v.index() as u32, ub.as_u32()));
            }
        }
        crate::BatchLiveness::compute(func, &self.checker, &defs, &uses)
            .expect("def-use chains of a function are always valid batch input")
    }

    /// Is `v` live at program point `p` (the paper's point
    /// decomposition)?
    ///
    /// `v` is dead before its definition point; otherwise it is live
    /// at `p` iff some use of `v` sits after `p` inside `p`'s block —
    /// decided by [`Function::has_use_after`]'s suffix membership scan
    /// over the instruction list, not a per-use position walk — or `v`
    /// is live-out of the block (Algorithm 2).
    ///
    /// This is the primitive the Budimlić interference test needs
    /// ("whether one variable is live directly after the instruction
    /// that defines the other one", §6.2), exposed as a first-class
    /// query. Errs when `v`'s defining instruction was removed (a
    /// detached definition has no position).
    pub fn is_live_at(
        &self,
        func: &Function,
        v: Value,
        p: ProgramPoint,
    ) -> Result<bool, PointError> {
        if !func
            .is_defined_at(v, p)
            .ok_or(PointError::DefinitionRemoved(v))?
        {
            return Ok(false); // same block, not yet defined at p
        }
        if func.has_use_after(v, p) {
            return Ok(true);
        }
        Ok(self.is_live_out(func, v, p.block()))
    }

    /// Is `v` live just after its own definition point — i.e. used at
    /// all past the defining instruction (or parameter binding)?
    pub fn is_live_after_def(&self, func: &Function, v: Value) -> Result<bool, PointError> {
        let def = func.def_point(v).ok_or(PointError::DefinitionRemoved(v))?;
        self.is_live_at(func, v, def)
    }

    /// [`is_live_at`](Self::is_live_at) the way the SSA-destruction
    /// crate's private shim used to compute it: the "use after `p`"
    /// part walks the def-use chain and resolves every same-block
    /// use's absolute position with a full `inst_position` scan —
    /// O(uses × block length) per query. Kept callable as the
    /// executable specification of the fast path (the two must agree
    /// bit-for-bit; see the point-oracle tests) and as the baseline of
    /// `BENCH_point.json`.
    pub fn is_live_at_chain_walk(
        &self,
        func: &Function,
        v: Value,
        p: ProgramPoint,
    ) -> Result<bool, PointError> {
        let def = func.def_point(v).ok_or(PointError::DefinitionRemoved(v))?;
        if def > p {
            return Ok(false);
        }
        let b = p.block();
        let used_later = func
            .uses(v)
            .iter()
            .any(|&i| func.inst_block(i) == Some(b) && func.inst_position(i) >= p.next_index());
        Ok(used_later || self.is_live_out(func, v, b))
    }

    /// Is `v` live at the program point *just after* `inst`? A
    /// convenience wrapper around [`is_live_at`](Self::is_live_at).
    ///
    /// # Panics
    ///
    /// Panics if `inst` or `v`'s defining instruction has been removed
    /// (use the point API directly for fallible handling).
    pub fn is_live_after(&self, func: &Function, v: Value, inst: Inst) -> bool {
        let p = func.point_after(inst).expect("instruction removed");
        self.is_live_at(func, v, p)
            .expect("definition of the queried value was removed")
    }

    /// Is `v` live at the program point *just before* `inst`?
    ///
    /// A use by `inst` itself counts; `v` is not live before its own
    /// definition.
    ///
    /// # Panics
    ///
    /// Panics if `inst` or `v`'s defining instruction has been removed
    /// (use the point API directly for fallible handling).
    pub fn is_live_before(&self, func: &Function, v: Value, inst: Inst) -> bool {
        let p = func.point_before(inst).expect("instruction removed");
        self.is_live_at(func, v, p)
            .expect("definition of the queried value was removed")
    }
}

/// Resolves `v`'s current uses straight to dominance-preorder numbers,
/// once per query (Definition 1 attribution: a branch argument is a use
/// at the branching block; unreachable blocks drop out), and hands the
/// list to `f` via the shared stack scratch. The seed resolved use
/// blocks inside the candidate loop, multiplying the def-use walk by
/// the candidate count.
#[inline]
fn with_use_nums<R>(
    checker: &crate::LivenessChecker,
    func: &Function,
    v: Value,
    f: impl FnOnce(&[u32]) -> R,
) -> R {
    let uses = func.uses(v);
    crate::checker::with_nums(
        uses.len(),
        uses.iter().map(|&inst| {
            let ub = func.inst_block(inst).expect("use site removed");
            checker.num_of(ub.as_u32())
        }),
        f,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::parse_function;

    fn loop_func() -> Function {
        parse_function(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .expect("parses")
    }

    fn nth_block(f: &Function, i: usize) -> Block {
        f.blocks().nth(i).expect("block exists")
    }

    #[test]
    fn loop_bound_is_live_through_the_loop() {
        let f = loop_func();
        let live = FunctionLiveness::compute(&f);
        let v0 = f.params()[0];
        let b0 = nth_block(&f, 0);
        let b1 = nth_block(&f, 1);
        let b2 = nth_block(&f, 2);
        assert!(!live.is_live_in(&f, v0, b0)); // never live-in at its def
        assert!(live.is_live_out(&f, v0, b0));
        assert!(live.is_live_in(&f, v0, b1));
        assert!(live.is_live_out(&f, v0, b1)); // needed by next iteration
        assert!(!live.is_live_in(&f, v0, b2));
        assert!(!live.is_live_out(&f, v0, b2));
    }

    #[test]
    fn phi_argument_liveness_follows_definition1() {
        let f = loop_func();
        let live = FunctionLiveness::compute(&f);
        let b0 = nth_block(&f, 0);
        let b1 = nth_block(&f, 1);
        // v1 (initial counter) is used only as a branch argument in
        // block0 — per Definition 1 that use happens *at block0*, the
        // block that also defines v1. Algorithm 2's def-block case
        // (uses(a) \ {def} = ∅) therefore reports it dead-out: the value
        // is consumed by the edge copy, exactly the paper's convention.
        let v1 = f.value("v1").expect("v1 exists");
        assert!(!live.is_live_out(&f, v1, b0));
        assert!(!live.is_live_in(&f, v1, b1));
        // But the φ-arg *is* live at the branch instruction itself.
        let jump = *f.block_insts(b0).last().unwrap();
        assert!(live.is_live_before(&f, v1, jump));
        // v4 (next counter) is passed around the back edge: live-out of
        // block1 and live-in at block1? v4 is *defined* in block1, so
        // live-in is false; live-out is true (the branch arg use is in
        // block1 itself, but v4 is also used by return in block2).
        let v4 = f.value("v4").expect("v4 exists");
        assert!(live.is_live_out(&f, v4, b1));
        assert!(!live.is_live_in(&f, v4, b1));
    }

    #[test]
    fn point_queries_inside_a_block() {
        let f = loop_func();
        let live = FunctionLiveness::compute(&f);
        let b1 = nth_block(&f, 1);
        let insts = f.block_insts(b1).to_vec();
        let v2 = f.value("v2").unwrap(); // block param
        let v4 = f.value("v4").unwrap(); // iadd result
        let iconst = insts[0];
        let iadd = insts[1];
        let icmp = insts[2];

        // v2 (param) is live before/after the iconst (used by the iadd)
        // and dead after the iadd (its last use).
        assert!(live.is_live_before(&f, v2, iconst));
        assert!(live.is_live_after(&f, v2, iconst));
        assert!(live.is_live_before(&f, v2, iadd));
        assert!(!live.is_live_after(&f, v2, iadd));

        // v4 is not live before its own definition, live after it.
        assert!(!live.is_live_before(&f, v4, iadd));
        assert!(live.is_live_after(&f, v4, iadd));
        assert!(live.is_live_before(&f, v4, icmp));
        assert!(live.is_live_after(&f, v4, icmp)); // used by brif + block2
    }

    #[test]
    fn fast_point_path_matches_chain_walk_at_every_point() {
        let f = loop_func();
        let live = FunctionLiveness::compute(&f);
        for v in f.values() {
            for b in f.blocks() {
                for p in f.block_points(b) {
                    assert_eq!(
                        live.is_live_at(&f, v, p),
                        live.is_live_at_chain_walk(&f, v, p),
                        "{v} at {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn live_after_def_is_use_driven() {
        let f = loop_func();
        let live = FunctionLiveness::compute(&f);
        // v4 is used by the brif and in block2: live after its def.
        let v4 = f.value("v4").unwrap();
        assert_eq!(live.is_live_after_def(&f, v4), Ok(true));
        // v5 is consumed by the brif, the last instruction: live after
        // its def (the brif comes later), dead after the brif.
        let v5 = f.value("v5").unwrap();
        assert_eq!(live.is_live_after_def(&f, v5), Ok(true));
        let b1 = nth_block(&f, 1);
        let brif = *f.block_insts(b1).last().unwrap();
        let after_brif = f.point_after(brif).unwrap();
        assert_eq!(live.is_live_at(&f, v5, after_brif), Ok(false));
    }

    #[test]
    fn queries_survive_instruction_edits() {
        let mut f = loop_func();
        let live = FunctionLiveness::compute(&f);
        let b2 = nth_block(&f, 2);
        let v0 = f.params()[0];
        assert!(!live.is_live_in(&f, v0, b2));

        // Add a use of v0 in block2: the same checker now answers true,
        // with zero recomputation (the paper's motivating property).
        f.insert_inst(
            b2,
            0,
            fastlive_ir::InstData::Unary {
                op: fastlive_ir::UnaryOp::Ineg,
                arg: v0,
            },
        );
        assert!(live.is_live_in(&f, v0, b2));
        assert!(live.is_live_out(&f, v0, nth_block(&f, 1)));

        // Remove it again: liveness reverts.
        let added = f.block_insts(b2)[0];
        f.remove_inst(added);
        assert!(!live.is_live_in(&f, v0, b2));
        assert!(live.is_current_for(&f));
    }

    #[test]
    fn new_values_are_queryable_without_recompute() {
        let mut f = loop_func();
        let live = FunctionLiveness::compute(&f);
        let b0 = nth_block(&f, 0);
        let b1 = nth_block(&f, 1);
        let b2 = nth_block(&f, 2);
        // Create a fresh value in block0 and a use in block2.
        let k = f.insert_inst(b0, 0, fastlive_ir::InstData::IntConst { imm: 9 });
        let kv = f.inst_result(k).unwrap();
        f.insert_inst(
            b2,
            0,
            fastlive_ir::InstData::Unary {
                op: fastlive_ir::UnaryOp::Bnot,
                arg: kv,
            },
        );
        assert!(live.is_live_in(&f, kv, b1)); // crosses the loop
        assert!(live.is_live_in(&f, kv, b2));
        assert!(live.is_live_out(&f, kv, b0));
    }
}
