//! The batch subsystem against the iterative data-flow oracle: on
//! every generated function — structured/reducible and goto-injected
//! irreducible alike — [`BatchLiveness`] must produce exactly the
//! live-in/live-out sets that `fastlive_dataflow::IterativeLiveness`
//! solves for, and agree with the scalar point queries of
//! [`FunctionLiveness`] on every `(value, block)` pair.

use fastlive_cfg::{DfsTree, DomTree, Reducibility};
use fastlive_construct::construct_ssa;
use fastlive_core::FunctionLiveness;
use fastlive_dataflow::{IterativeLiveness, VarUniverse};
use fastlive_ir::Function;
use fastlive_workload::{generate_function, generate_pre, inject_gotos, GenParams};

/// Checks one function exhaustively: batch vs. iterative oracle vs.
/// scalar checker queries, for every value at every block, plus the
/// materialized set views.
fn assert_batch_matches_oracle(func: &Function, label: &str) {
    let live = FunctionLiveness::compute(func);
    let batch = live.batch(func);
    let oracle = IterativeLiveness::compute(func, &VarUniverse::all(func));
    for v in func.values() {
        let var = v.index() as u32;
        for b in func.blocks() {
            let q = b.index() as u32;
            assert_eq!(
                batch.is_live_in(var, q),
                oracle.is_live_in(v, b),
                "{label}: live-in {v} at {b}"
            );
            assert_eq!(
                batch.is_live_out(var, q),
                oracle.is_live_out(v, b),
                "{label}: live-out {v} at {b}"
            );
            assert_eq!(
                batch.is_live_in(var, q),
                live.is_live_in(func, v, b),
                "{label}: batch vs scalar live-in {v} at {b}"
            );
            assert_eq!(
                batch.is_live_out(var, q),
                live.is_live_out(func, v, b),
                "{label}: batch vs scalar live-out {v} at {b}"
            );
        }
    }
    // Set views carry the same information as the point queries.
    for b in func.blocks() {
        let q = b.index() as u32;
        let ins: Vec<u32> = oracle
            .live_in_set(b)
            .iter()
            .map(|v| v.index() as u32)
            .collect();
        let mut ins_sorted = ins.clone();
        ins_sorted.sort_unstable();
        assert_eq!(
            batch.live_in_vars(q),
            ins_sorted,
            "{label}: live-in set at {b}"
        );
        assert_eq!(
            batch.live_out_len(q),
            oracle.live_out_set(b).len(),
            "{label}: at {b}"
        );
    }
}

#[test]
fn batch_matches_oracle_on_structured_functions() {
    for (i, target) in [4usize, 10, 24, 48, 80].into_iter().enumerate() {
        for seed in 0..6u64 {
            let params = GenParams {
                target_blocks: target,
                max_depth: 3 + (target / 16).min(5) as u32,
                ..GenParams::default()
            };
            let (_, func) = generate_function("batch", params, seed * 977 + i as u64);
            let dfs = DfsTree::compute(&func);
            let dom = DomTree::compute(&func, &dfs);
            assert!(
                Reducibility::compute(&dfs, &dom).is_reducible(),
                "structured generator must stay reducible"
            );
            assert_batch_matches_oracle(&func, &format!("structured t={target} s={seed}"));
        }
    }
}

#[test]
fn batch_matches_oracle_on_irreducible_functions() {
    let mut irreducible_seen = 0;
    for seed in 0..40u64 {
        let params = GenParams {
            target_blocks: 24,
            ..GenParams::default()
        };
        let mut pre = generate_pre("batch_irr", params, seed);
        inject_gotos(&mut pre, 4, seed);
        // Gotos can break definite assignment; the suite generator
        // discards those programs and so do we.
        let Ok(func) = construct_ssa(&pre) else {
            continue;
        };
        let dfs = DfsTree::compute(&func);
        let dom = DomTree::compute(&func, &dfs);
        if !Reducibility::compute(&dfs, &dom).is_reducible() {
            irreducible_seen += 1;
        }
        assert_batch_matches_oracle(&func, &format!("goto-injected s={seed}"));
    }
    assert!(
        irreducible_seen >= 5,
        "goto injection produced only {irreducible_seen} irreducible CFGs"
    );
}

#[test]
fn batch_snapshot_vs_live_sets_materialization() {
    // The batch path and the O(V·B)-queries live_sets() path are two
    // routes to the same answer.
    let params = GenParams {
        target_blocks: 20,
        ..GenParams::default()
    };
    let (_, func) = generate_function("snap", params, 0xbeef);
    let live = FunctionLiveness::compute(&func);
    let batch = live.batch(&func);
    let (ins, outs) = live.live_sets(&func);
    for b in func.blocks() {
        let q = b.index() as u32;
        let from_sets: Vec<u32> = ins[b.index()].iter().map(|v| v.index() as u32).collect();
        assert_eq!(batch.live_in_vars(q), from_sets);
        let out_sets: Vec<u32> = outs[b.index()].iter().map(|v| v.index() as u32).collect();
        assert_eq!(batch.live_out_vars(q), out_sets);
    }
}

#[test]
fn live_sets_batch_route_matches_the_scalar_route() {
    // `live_sets` is now one batch matrix pass; `live_sets_scalar`
    // keeps the per-(value, block) query loop it replaced. Identical
    // output on structured and goto-injected functions alike.
    for seed in 0..8u64 {
        let params = GenParams {
            target_blocks: 8 + (seed as usize % 4) * 16,
            ..GenParams::default()
        };
        let mut pre = generate_pre("sets", params, seed);
        if seed % 2 == 1 {
            let mut dirty = pre.clone();
            inject_gotos(&mut dirty, 3, seed);
            if construct_ssa(&dirty).is_ok() {
                pre = dirty;
            }
        }
        let func = construct_ssa(&pre).expect("strict");
        let live = FunctionLiveness::compute(&func);
        assert_eq!(
            live.live_sets(&func),
            live.live_sets_scalar(&func),
            "seed {seed}"
        );
    }
}

#[test]
fn malformed_batch_input_is_an_error_not_a_panic() {
    use fastlive_core::{BatchError, BatchLiveness, LivenessChecker};
    use fastlive_graph::DiGraph;

    let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
    let checker = LivenessChecker::compute(&g);
    // A use naming a variable nobody defined.
    let err = BatchLiveness::compute(&g, &checker, &[0], &[(7, 2)]).unwrap_err();
    assert_eq!(
        err,
        BatchError::UnknownVariable {
            var: 7,
            num_defined: 1
        }
    );
    assert!(err.to_string().contains("unknown variable 7"));
    // A definition block outside the graph.
    let err = BatchLiveness::compute(&g, &checker, &[9], &[]).unwrap_err();
    assert_eq!(
        err,
        BatchError::BlockOutOfRange {
            block: 9,
            num_blocks: 3
        }
    );
    // A use block outside the graph.
    let err = BatchLiveness::compute(&g, &checker, &[0], &[(0, 9)]).unwrap_err();
    assert!(matches!(err, BatchError::BlockOutOfRange { block: 9, .. }));
    // The checker survives the refusals and keeps answering.
    assert!(checker.is_live_in(0, &[2], 1));
}
