//! Core-crate integration tests against the Definition-2 oracle of
//! `fastlive-dataflow` (a dev-dependency to keep the layering acyclic).

use fastlive_cfg::{DfsTree, DomTree};
use fastlive_core::{FunctionLiveness, LivenessChecker};
use fastlive_dataflow::{oracle, IterativeLiveness, VarUniverse};
use fastlive_graph::DiGraph;
use fastlive_ir::parse_function;

/// Deterministic xorshift for the random-graph sweeps.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn checker_matches_oracle_on_random_graphs_with_ssa_precondition() {
    let mut state = 0x0ddba11u64;
    for case in 0..150 {
        let n = 2 + (xorshift(&mut state) % 14) as usize;
        let mut g = DiGraph::new(n, 0);
        for v in 1..n as u32 {
            g.add_edge((xorshift(&mut state) % v as u64) as u32, v);
        }
        for _ in 0..(xorshift(&mut state) % (2 * n as u64 + 1)) {
            let u = (xorshift(&mut state) % n as u64) as u32;
            let v = (xorshift(&mut state) % n as u64) as u32;
            g.add_edge(u, v);
        }
        let dfs = DfsTree::compute(&g);
        let dom = DomTree::compute(&g, &dfs);
        let live = LivenessChecker::compute(&g);
        for def in 0..n as u32 {
            for u in 0..n as u32 {
                // Strict SSA: definitions dominate uses.
                if !dfs.is_reachable(def) || !dfs.is_reachable(u) || !dom.dominates(def, u) {
                    continue;
                }
                for q in 0..n as u32 {
                    if !dfs.is_reachable(q) {
                        continue;
                    }
                    let uses = [u];
                    assert_eq!(
                        live.is_live_in(def, &uses, q),
                        oracle::live_in(&g, def, &uses, q),
                        "case {case}: live-in def={def} use={u} q={q}\n{g:?}"
                    );
                    assert_eq!(
                        live.is_live_out(def, &uses, q),
                        oracle::live_out(&g, def, &uses, q),
                        "case {case}: live-out def={def} use={u} q={q}\n{g:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn multi_use_queries_match_the_union_of_single_use_queries() {
    // Algorithm 1 iterates the def-use chain: a query with several uses
    // must equal the OR over single-use queries.
    let mut state = 0xabcd_ef12u64;
    for _ in 0..60 {
        let n = 3 + (xorshift(&mut state) % 10) as usize;
        let mut g = DiGraph::new(n, 0);
        for v in 1..n as u32 {
            g.add_edge((xorshift(&mut state) % v as u64) as u32, v);
        }
        for _ in 0..(xorshift(&mut state) % (n as u64)) {
            let u = (xorshift(&mut state) % n as u64) as u32;
            let v = (xorshift(&mut state) % n as u64) as u32;
            g.add_edge(u, v);
        }
        let live = LivenessChecker::compute(&g);
        let uses: Vec<u32> = (0..3)
            .map(|_| (xorshift(&mut state) % n as u64) as u32)
            .collect();
        for def in 0..n as u32 {
            for q in 0..n as u32 {
                let combined = live.is_live_in(def, &uses, q);
                let union = uses.iter().any(|&u| live.is_live_in(def, &[u], q));
                assert_eq!(combined, union, "def={def} q={q} uses={uses:?}");
            }
        }
    }
}

#[test]
fn live_sets_match_the_dataflow_solver() {
    let f = parse_function(
        "function %mix { block0(v0, v1):
            v2 = iadd v0, v1
            brif v2, block1, block2
        block1:
            v3 = ineg v0
            jump block3(v3)
        block2:
            v4 = bnot v1
            jump block3(v4)
        block3(v5):
            v6 = imul v5, v0
            return v6 }",
    )
    .unwrap();
    let live = FunctionLiveness::compute(&f);
    let solver = IterativeLiveness::compute(&f, &VarUniverse::all(&f));
    let (ins, outs) = live.live_sets(&f);
    for b in f.blocks() {
        let mut from_solver_in = solver.live_in_set(b);
        let mut from_solver_out = solver.live_out_set(b);
        from_solver_in.sort();
        from_solver_out.sort();
        assert_eq!(ins[b.index()], from_solver_in, "live-in at {b}");
        assert_eq!(outs[b.index()], from_solver_out, "live-out at {b}");
    }
}

#[test]
fn point_queries_match_a_naive_instruction_walk() {
    // Cross-check is_live_after against a direct definition: v is live
    // after position p in block b iff some use is reachable from that
    // point without re-crossing the definition.
    let f = parse_function(
        "function %pt { block0(v0):
            v1 = iconst 1
            v2 = iadd v0, v1
            v3 = iadd v2, v1
            brif v3, block1, block2
        block1:
            v4 = ineg v2
            return v4
        block2:
            return v1 }",
    )
    .unwrap();
    let live = FunctionLiveness::compute(&f);
    for b in f.blocks() {
        let insts = f.block_insts(b).to_vec();
        for (pos, &inst) in insts.iter().enumerate() {
            for v in f.values() {
                let expect = naive_live_after(&f, v, b, pos);
                assert_eq!(
                    live.is_live_after(&f, v, inst),
                    expect,
                    "{v} after {inst} (pos {pos} of {b})"
                );
            }
        }
    }
}

/// Ground truth for point liveness: uses later in the block (if the
/// def is at or before the point), else block-level live-out via the
/// oracle.
fn naive_live_after(
    f: &fastlive_ir::Function,
    v: fastlive_ir::Value,
    b: fastlive_ir::Block,
    pos: usize,
) -> bool {
    use fastlive_ir::ValueDef;
    let (db, dpos) = match f.value_def(v) {
        ValueDef::Param { block, .. } => (block, -1i64),
        ValueDef::Inst(i) => (f.inst_block(i).unwrap(), f.inst_position(i) as i64),
    };
    if db == b && dpos > pos as i64 {
        return false;
    }
    let later_use = f
        .uses(v)
        .iter()
        .any(|&i| f.inst_block(i) == Some(b) && f.inst_position(i) as i64 > pos as i64);
    later_use || oracle::live_out_value(f, v, b)
}
