//! SSA destruction for the `fastlive` workspace: Sreedhar et al.'s
//! Method III φ-congruence coalescing driven by the Budimlić et al.
//! liveness-based interference test.
//!
//! This pass is the paper's *evaluation workload* (§6.2): every liveness
//! query timed in Table 2 is issued while this algorithm decides which
//! φ resources may share a location. The pass is generic over the
//! workspace-wide [`fastlive_core::LivenessProvider`] interface so
//! that the same query stream can be served by the paper's checker
//! ([`CheckerEngine`]) or by the reimplemented LAO baseline
//! ([`NativeEngine`]) — exactly the comparison the paper measures. The
//! Budimlić test's "live directly after the defining instruction" is a
//! [`ProgramPoint`](fastlive_ir::ProgramPoint) query
//! ([`LivenessProvider::live_at`]); the destruct-private block+position
//! shim this crate used to carry is gone.
//!
//! Pipeline ([`destruct_ssa`]):
//!
//! 1. split critical edges (copies need a home "on the edge", §2.2),
//! 2. initialize singleton φ-congruence classes,
//! 3. for every φ (block parameter), test interference between the
//!    classes of its resources (result + arguments) with the Budimlić
//!    dominance/liveness test, insert `copy` instructions per
//!    Sreedhar's case analysis, and merge the resources' classes,
//! 4. leave SSA ([`out_of_ssa`]): map every congruence class to one
//!    mutable variable of a [`PreFunction`](fastlive_construct::PreFunction),
//!    dropping φs and branch arguments entirely.
//!
//! Correctness is validated semantically: the destructed program must
//! compute the same outputs as the SSA function on randomized inputs
//! (see the crate tests and `tests/destruct_semantics.rs` at the
//! workspace root).
//!
//! The [`values_interfere`] primitive is also a first-class query of
//! the [`fastlive` facade](https://docs.rs/fastlive) (the workspace
//! root crate): `Query::Interfere` routes through this function on
//! every backend, so interference answers are one `session.query`
//! away without assembling a provider and dominator tree by hand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod congruence;
mod engines;
mod interference;
mod out_of_ssa;
mod sreedhar;

pub use congruence::Congruence;
pub use engines::{BitvecEngine, CheckerEngine, NativeEngine};
pub use interference::values_interfere;
pub use out_of_ssa::out_of_ssa;
pub use sreedhar::{destruct_ssa, DestructResult, DestructStats, QueryKind, QueryRecord};

// The query interface the engines implement, re-exported so destruct
// clients need not depend on `fastlive-core` directly.
pub use fastlive_core::{LivenessProvider, PointError};
