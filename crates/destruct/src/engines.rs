//! Pluggable liveness engines for the destruction pass, all speaking
//! the workspace-wide [`LivenessProvider`] interface of
//! `fastlive-core`.
//!
//! The trait used to live here as a destruct-private `BlockLiveness`;
//! it is now [`fastlive_core::LivenessProvider`] — block *and* program-
//! point queries — so the pass, the benchmarks and any other client
//! swap engines behind one interface. All engines must implement the
//! same semantics (Definitions 1–3 of the paper) so the pass makes
//! identical decisions regardless of the engine — the benches then
//! compare pure engine cost on an identical query stream.

use std::collections::HashMap;
use std::sync::Arc;

use fastlive_core::{FunctionLiveness, LivenessProvider, PointError};
use fastlive_dataflow::{IterativeLiveness, LaoLiveness};
use fastlive_graph::Cfg as _;
use fastlive_ir::{Block, Function, ProgramPoint, Value};

/// The paper's checker as a destruction engine. Queries read the
/// live def-use chains, so values created mid-pass need **no special
/// handling whatsoever** — the headline property under test.
///
/// The analysis handle is shared ([`Arc`]): the module-level driver in
/// `fastlive-engine` hands every CFG-identical function one cached
/// precomputation instead of recomputing per function.
#[derive(Clone, Debug)]
pub struct CheckerEngine(pub Arc<FunctionLiveness>);

impl CheckerEngine {
    /// Precomputes the checker for `func` (post edge-splitting).
    pub fn compute(func: &Function) -> Self {
        CheckerEngine(Arc::new(FunctionLiveness::compute(func)))
    }

    /// Wraps an already-computed (possibly cached and shared) analysis
    /// — the reuse hook for `fastlive-engine`'s fingerprint cache.
    pub fn from_shared(live: Arc<FunctionLiveness>) -> Self {
        CheckerEngine(live)
    }
}

impl LivenessProvider for CheckerEngine {
    fn live_in(&mut self, func: &Function, v: Value, b: Block) -> bool {
        self.0.is_live_in(func, v, b)
    }
    fn live_out(&mut self, func: &Function, v: Value, b: Block) -> bool {
        self.0.is_live_out(func, v, b)
    }
    fn live_at(&mut self, func: &Function, v: Value, p: ProgramPoint) -> Result<bool, PointError> {
        // Same decomposition as the trait default; routed through the
        // inherent method so the two entry points cannot drift. (The
        // genuinely slower variant is `is_live_at_chain_walk`, kept
        // only as the executable spec and bench baseline.)
        self.0.is_live_at(func, v, p)
    }
    fn name(&self) -> &'static str {
        "new (Boissinot et al.)"
    }
}

/// The LAO-style baseline as a destruction engine.
///
/// The precomputed sorted-array sets know nothing about values created
/// mid-pass; like LAO, the engine patches liveness for new names on
/// demand (here: an exact per-value backward walk, memoized). Stale
/// entries for *old* values whose uses were rewritten stay
/// over-approximate — which is conservative (at worst an extra copy),
/// and precisely the maintenance burden §1 of the paper attributes to
/// set-based liveness. Point queries come from the trait's default
/// decomposition over the patched block answers.
#[derive(Clone, Debug)]
pub struct NativeEngine {
    base: LaoLiveness,
    known_values: usize,
    /// Values whose precomputed sets went stale (uses rewritten).
    overridden: std::collections::HashSet<Value>,
    /// Lazily computed (live-in blocks, live-out blocks) for new or
    /// overridden values.
    patched: HashMap<Value, (Vec<bool>, Vec<bool>)>,
}

impl NativeEngine {
    /// Wraps a solved LAO analysis; `func` determines which values the
    /// base analysis can answer for.
    pub fn new(base: LaoLiveness, func: &Function) -> Self {
        NativeEngine {
            base,
            known_values: func.num_values(),
            overridden: std::collections::HashSet::new(),
            patched: HashMap::new(),
        }
    }

    /// Statistics: how many mid-pass values needed patch-up walks.
    pub fn patched_values(&self) -> usize {
        self.patched.len()
    }

    fn needs_patch(&self, v: Value) -> bool {
        v.index() >= self.known_values || self.overridden.contains(&v)
    }
}

impl LivenessProvider for NativeEngine {
    fn live_in(&mut self, func: &Function, v: Value, b: Block) -> bool {
        if self.needs_patch(v) {
            patch_walk(&mut self.patched, func, v).0[b.index()]
        } else {
            self.base.is_live_in(v, b)
        }
    }
    fn live_out(&mut self, func: &Function, v: Value, b: Block) -> bool {
        if self.needs_patch(v) {
            patch_walk(&mut self.patched, func, v).1[b.index()]
        } else {
            self.base.is_live_out(v, b)
        }
    }
    fn invalidate_value(&mut self, _func: &Function, v: Value) {
        self.overridden.insert(v);
        self.patched.remove(&v);
    }
    fn name(&self) -> &'static str {
        "native (LAO-style)"
    }
}

/// The plain bit-vector iterative solver as an engine (same patch-up
/// strategy as [`NativeEngine`]); a third reference point for the
/// ablation benchmarks.
#[derive(Clone, Debug)]
pub struct BitvecEngine {
    base: IterativeLiveness,
    known_values: usize,
    overridden: std::collections::HashSet<Value>,
    patched: HashMap<Value, (Vec<bool>, Vec<bool>)>,
}

impl BitvecEngine {
    /// Wraps a solved bit-vector analysis.
    pub fn new(base: IterativeLiveness, func: &Function) -> Self {
        BitvecEngine {
            base,
            known_values: func.num_values(),
            overridden: std::collections::HashSet::new(),
            patched: HashMap::new(),
        }
    }

    fn needs_patch(&self, v: Value) -> bool {
        v.index() >= self.known_values || self.overridden.contains(&v)
    }
}

impl LivenessProvider for BitvecEngine {
    fn live_in(&mut self, func: &Function, v: Value, b: Block) -> bool {
        if self.needs_patch(v) {
            patch_walk(&mut self.patched, func, v).0[b.index()]
        } else {
            self.base.is_live_in(v, b)
        }
    }
    fn live_out(&mut self, func: &Function, v: Value, b: Block) -> bool {
        if self.needs_patch(v) {
            patch_walk(&mut self.patched, func, v).1[b.index()]
        } else {
            self.base.is_live_out(v, b)
        }
    }
    fn invalidate_value(&mut self, _func: &Function, v: Value) {
        self.overridden.insert(v);
        self.patched.remove(&v);
    }
    fn name(&self) -> &'static str {
        "bitvector data-flow"
    }
}

/// Shared per-value patch-up walk (see [`NativeEngine`]).
fn patch_walk<'a>(
    cache: &'a mut HashMap<Value, (Vec<bool>, Vec<bool>)>,
    func: &Function,
    v: Value,
) -> &'a (Vec<bool>, Vec<bool>) {
    cache.entry(v).or_insert_with(|| {
        let n = func.num_blocks();
        let mut live_in = vec![false; n];
        let mut live_out = vec![false; n];
        let def = func.def_block(v);
        let mut stack: Vec<Block> = Vec::new();
        for &site in func.uses(v) {
            let u = func.inst_block(site).expect("use site removed");
            if u != def && !live_in[u.index()] {
                live_in[u.index()] = true;
                stack.push(u);
            }
        }
        while let Some(b) = stack.pop() {
            for &p in func.preds(b.as_u32()) {
                live_out[p as usize] = true;
                let pb = Block::from_index(p as usize);
                if pb != def && !live_in[p as usize] {
                    live_in[p as usize] = true;
                    stack.push(pb);
                }
            }
        }
        (live_in, live_out)
    })
}
