//! The final out-of-SSA translation: every φ-congruence class becomes
//! one mutable variable; φs and branch arguments disappear.

use std::collections::HashMap;

use fastlive_construct::{PreFunction, PreRvalue, PreTerm, Var};
use fastlive_ir::{Function, InstData, UnaryOp, Value};

use crate::congruence::Congruence;
use crate::sreedhar::DestructStats;

/// Translates a copy-repaired SSA function into a [`PreFunction`] over
/// mutable variables, mapping every congruence class to one variable.
///
/// Because the destruction pass guarantees interference-free classes,
/// dropping the φs (block parameters) and branch arguments is safe: at
/// any moment at most one member of a class is live, so the shared
/// variable always carries the right value. Copies whose source and
/// destination land in the same class render as `x = x` and are elided
/// (counted in [`DestructStats::copies_coalesced`]).
///
/// # Panics
///
/// Panics if two entry parameters ended up in one congruence class
/// (the interference test forbids it) or the function is structurally
/// incomplete.
pub fn out_of_ssa(
    func: &Function,
    classes: &mut Congruence,
    stats: &mut DestructStats,
) -> PreFunction {
    let entry = func.entry_block();
    let n_params = func.block_params(entry).len() as u32;
    let mut pre = PreFunction::new(func.name.clone(), n_params);
    for _ in 1..func.num_blocks() {
        pre.add_block();
    }

    // Congruence-class roots to variables; entry parameters claim their
    // positional slots first.
    let mut var_of: HashMap<Value, Var> = HashMap::new();
    for (i, &p) in func.block_params(entry).iter().enumerate() {
        let root = classes.find(p);
        let prev = var_of.insert(root, pre.param(i as u32));
        assert!(
            prev.is_none(),
            "entry parameters {p} and another ended up in one congruence class"
        );
    }

    fn lookup(
        pre: &mut PreFunction,
        var_of: &mut HashMap<Value, Var>,
        classes: &mut Congruence,
        v: Value,
    ) -> Var {
        let root = classes.find(v);
        *var_of.entry(root).or_insert_with(|| pre.fresh_var())
    }

    for b in func.blocks() {
        let node = b.as_u32();
        for &inst in func.block_insts(b) {
            let result_var = func
                .inst_result(inst)
                .map(|r| lookup(&mut pre, &mut var_of, classes, r));
            match func.inst_data(inst).clone() {
                InstData::IntConst { imm } => {
                    pre.assign(
                        node,
                        result_var.expect("const result"),
                        PreRvalue::Const(imm),
                    );
                }
                InstData::Unary { op, arg } => {
                    let dst = result_var.expect("unary result");
                    let src = lookup(&mut pre, &mut var_of, classes, arg);
                    if op == UnaryOp::Copy && dst == src {
                        stats.copies_coalesced += 1;
                    } else {
                        pre.assign(node, dst, PreRvalue::Unary(op, src));
                    }
                }
                InstData::Binary { op, args } => {
                    let a = lookup(&mut pre, &mut var_of, classes, args[0]);
                    let c = lookup(&mut pre, &mut var_of, classes, args[1]);
                    pre.assign(
                        node,
                        result_var.expect("binary result"),
                        PreRvalue::Binary(op, a, c),
                    );
                }
                InstData::Jump { dest } => {
                    // Branch arguments vanish: the class variable already
                    // carries the value.
                    pre.set_term(node, PreTerm::Jump(dest.block.as_u32()));
                }
                InstData::Brif {
                    cond,
                    then_dest,
                    else_dest,
                } => {
                    let c = lookup(&mut pre, &mut var_of, classes, cond);
                    pre.set_term(
                        node,
                        PreTerm::Brif {
                            cond: c,
                            then_dest: then_dest.block.as_u32(),
                            else_dest: else_dest.block.as_u32(),
                        },
                    );
                }
                InstData::Return { args } => {
                    let vars = args
                        .iter()
                        .map(|&a| lookup(&mut pre, &mut var_of, classes, a))
                        .collect();
                    pre.set_term(node, PreTerm::Return(vars));
                }
            }
        }
    }
    pre
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_construct::run_pre;
    use fastlive_ir::parse_function;

    #[test]
    fn singleton_classes_translate_one_to_one() {
        let f = parse_function(
            "function %f { block0(v0):
                v1 = iconst 2
                v2 = imul v0, v1
                return v2 }",
        )
        .unwrap();
        let mut classes = Congruence::new(f.num_values());
        let mut stats = DestructStats::default();
        let pre = out_of_ssa(&f, &mut classes, &mut stats);
        assert_eq!(run_pre(&pre, &[21], 100).unwrap().returned, vec![42]);
        assert_eq!(stats.copies_coalesced, 0);
    }

    #[test]
    fn coalesced_copy_is_elided() {
        let f = parse_function(
            "function %f { block0(v0):
                v1 = copy v0
                return v1 }",
        )
        .unwrap();
        let mut classes = Congruence::new(f.num_values());
        // Put v0 and v1 in one class: the copy becomes x = x.
        classes.union(f.value("v0").unwrap(), f.value("v1").unwrap());
        let mut stats = DestructStats::default();
        let pre = out_of_ssa(&f, &mut classes, &mut stats);
        assert_eq!(stats.copies_coalesced, 1);
        assert_eq!(run_pre(&pre, &[7], 100).unwrap().returned, vec![7]);
        assert!(pre.stmts(0).is_empty(), "self-copy must vanish");
    }

    #[test]
    fn phi_class_shares_one_variable() {
        let f = parse_function(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .unwrap();
        let mut classes = Congruence::new(f.num_values());
        for name in ["v1", "v4"] {
            classes.union(f.value("v2").unwrap(), f.value(name).unwrap());
        }
        let mut stats = DestructStats::default();
        let pre = out_of_ssa(&f, &mut classes, &mut stats);
        // Semantics must match the SSA interpreter (the loop increments
        // at least once, so n = 0 returns 1).
        for n in [5i64, 0, -3, 9] {
            let want = fastlive_ir::interp::run(&f, &[n], 1_000).unwrap().returned;
            assert_eq!(
                run_pre(&pre, &[n], 1_000).unwrap().returned,
                want,
                "n = {n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one congruence class")]
    fn merged_entry_params_rejected() {
        let f = parse_function("function %f { block0(v0, v1): return v0 }").unwrap();
        let mut classes = Congruence::new(f.num_values());
        classes.union(f.value("v0").unwrap(), f.value("v1").unwrap());
        let mut stats = DestructStats::default();
        let _ = out_of_ssa(&f, &mut classes, &mut stats);
    }
}
