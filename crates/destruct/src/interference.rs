//! The interference test of Budimlić et al. ("Fast Copy Coalescing and
//! Live-Range Identification", PLDI 2002), as used by LAO's SSA
//! destruction per §6.2 of the paper:
//!
//! > "The interference test employed was proposed by Budimlić et al.
//! > and uses SSA properties and liveness to determine if two variables
//! > interfere. Basically, it decides whether one variable is live
//! > directly after the instruction that defines the other one."
//!
//! Under strict SSA, two values can only interfere if one's definition
//! dominates the other's; it then suffices to test liveness of the
//! dominating value at the dominated definition point. No interference
//! graph is ever built.

use fastlive_cfg::DomTree;
use fastlive_ir::{Block, Function, Value, ValueDef};

use crate::engines::BlockLiveness;

/// The definition point of a value: `(block, position)`, where block
/// parameters sit at position −1 (defined before every instruction).
pub fn def_point(func: &Function, v: Value) -> (Block, isize) {
    match func.value_def(v) {
        ValueDef::Param { block, .. } => (block, -1),
        ValueDef::Inst(i) => {
            let b = func.inst_block(i).expect("definition removed");
            (b, func.inst_position(i) as isize)
        }
    }
}

/// Is `v` live at the program point just after position `pos` of block
/// `b`, answering from a block-granularity engine plus the def-use
/// chain? (`pos = -1` asks about the block entry, after parameter
/// binding.)
///
/// The decomposition: `v` is live there iff it is defined at or before
/// the point and (some use of `v` in `b` comes later, or `v` is
/// live-out of `b`).
pub fn live_after_point<E: BlockLiveness>(
    engine: &mut E,
    func: &Function,
    v: Value,
    b: Block,
    pos: isize,
) -> bool {
    let (db, dpos) = def_point(func, v);
    if db == b && dpos > pos {
        return false; // not defined yet at this point
    }
    let used_later = func
        .uses(v)
        .iter()
        .any(|&i| func.inst_block(i) == Some(b) && func.inst_position(i) as isize > pos);
    used_later || engine.live_out(func, v, b)
}

/// The Budimlić test: do SSA values `a` and `b` interfere (are they
/// simultaneously live somewhere)?
///
/// * If neither definition point dominates the other, the live ranges
///   cannot overlap under strict SSA: no interference.
/// * Otherwise the value defined *higher* is tested for liveness just
///   after the *lower* definition.
///
/// Two values defined at the same point (two parameters of one block)
/// interfere iff the one tested is still in use at all.
pub fn values_interfere<E: BlockLiveness>(
    engine: &mut E,
    func: &Function,
    dom: &DomTree,
    a: Value,
    b: Value,
) -> bool {
    if a == b {
        return false;
    }
    let (ba, pa) = def_point(func, a);
    let (bb, pb) = def_point(func, b);
    if ba == bb && pa == pb {
        // Two parameters of the same block (the only way definition
        // points coincide). Entry parameters always conflict: they are
        // bound to distinct argument slots and must keep distinct
        // locations. Other block parameters bind simultaneously and
        // produce no write in the out-of-SSA program, so they conflict
        // exactly when both are ever live.
        if ba == func.entry_block() {
            return true;
        }
        return live_after_point(engine, func, a, ba, pa)
            && live_after_point(engine, func, b, bb, pb);
    }
    // Order so that `hi` is defined strictly above `lo`. Note that `lo`
    // being dead does not excuse it: its definition still *writes* the
    // shared location, which must not clobber a live `hi`.
    let a_first = if ba == bb {
        pa < pb
    } else if dom.strictly_dominates(ba.as_u32(), bb.as_u32()) {
        true
    } else if dom.strictly_dominates(bb.as_u32(), ba.as_u32()) {
        false
    } else {
        return false; // incomparable definitions never interfere
    };
    let (hi, (lo_block, lo_pos)) = if a_first {
        (a, (bb, pb))
    } else {
        (b, (ba, pa))
    };
    live_after_point(engine, func, hi, lo_block, lo_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::CheckerEngine;
    use fastlive_cfg::{DfsTree, DomTree};
    use fastlive_ir::parse_function;

    fn setup(src: &str) -> (Function, DomTree, CheckerEngine) {
        let f = parse_function(src).expect("parses");
        let dfs = DfsTree::compute(&f);
        let dom = DomTree::compute(&f, &dfs);
        let engine = CheckerEngine::compute(&f);
        (f, dom, engine)
    }

    #[test]
    fn overlapping_ranges_interfere() {
        let (f, dom, mut e) = setup(
            "function %f { block0(v0):
                v1 = iconst 1
                v2 = iadd v0, v1
                v3 = iadd v0, v2
                return v3 }",
        );
        let v0 = f.value("v0").unwrap();
        let v1 = f.value("v1").unwrap();
        let v2 = f.value("v2").unwrap();
        let v3 = f.value("v3").unwrap();
        // v0 is live across everything: interferes with v1 and v2.
        assert!(values_interfere(&mut e, &f, &dom, v0, v1));
        assert!(values_interfere(&mut e, &f, &dom, v1, v0)); // symmetric
        assert!(values_interfere(&mut e, &f, &dom, v0, v2));
        // v1 dies at the v2 definition: v1 vs v3 do not interfere.
        assert!(!values_interfere(&mut e, &f, &dom, v1, v3));
        // A value never interferes with itself.
        assert!(!values_interfere(&mut e, &f, &dom, v2, v2));
    }

    #[test]
    fn sibling_branches_do_not_interfere() {
        let (f, dom, mut e) = setup(
            "function %f { block0(v0):
                brif v0, block1, block2
            block1:
                v1 = iconst 1
                return v1
            block2:
                v2 = iconst 2
                return v2 }",
        );
        let v1 = f.value("v1").unwrap();
        let v2 = f.value("v2").unwrap();
        assert!(!values_interfere(&mut e, &f, &dom, v1, v2));
        assert!(!values_interfere(&mut e, &f, &dom, v2, v1));
    }

    #[test]
    fn same_block_params_interfere_when_both_used() {
        let (f, dom, mut e) = setup(
            "function %f { block0(v0, v1):
                v2 = iadd v0, v1
                return v2 }",
        );
        let v0 = f.value("v0").unwrap();
        let v1 = f.value("v1").unwrap();
        assert!(values_interfere(&mut e, &f, &dom, v0, v1));
        // Entry parameters conflict even when one is dead: they occupy
        // distinct argument slots.
        let (g, gdom, mut ge) = setup(
            "function %g { block0(v0, v1):
                return v0 }",
        );
        let g0 = g.value("v0").unwrap();
        let g1 = g.value("v1").unwrap();
        assert!(values_interfere(&mut ge, &g, &gdom, g0, g1));
        // Non-entry sibling parameters with a dead side do not.
        let (h, hdom, mut he) = setup(
            "function %h { block0(v0, v1):
                jump block1(v0, v1)
            block1(v2, v3):
                return v2 }",
        );
        let h2 = h.value("v2").unwrap();
        let h3 = h.value("v3").unwrap();
        assert!(!values_interfere(&mut he, &h, &hdom, h2, h3));
    }

    #[test]
    fn live_through_a_loop_interferes_with_loop_values() {
        let (f, dom, mut e) = setup(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        );
        let v0 = f.value("v0").unwrap(); // loop bound, live throughout
        let v2 = f.value("v2").unwrap(); // loop-carried counter
        let v4 = f.value("v4").unwrap();
        assert!(values_interfere(&mut e, &f, &dom, v0, v2));
        assert!(values_interfere(&mut e, &f, &dom, v0, v4));
        // v2 dies at the iadd; v4 defined there: no interference...
        // except v2 is *not* used after v4's def and not live-out:
        assert!(!values_interfere(&mut e, &f, &dom, v2, v4));
    }

    #[test]
    fn live_after_point_respects_positions() {
        let (f, _, mut e) = setup(
            "function %f { block0(v0):
                v1 = iconst 1
                v2 = iadd v0, v1
                return v2 }",
        );
        let b0 = f.entry_block();
        let v1 = f.value("v1").unwrap();
        // v1 live after its def (pos 0), dead after the iadd (pos 1).
        assert!(live_after_point(&mut e, &f, v1, b0, 0));
        assert!(!live_after_point(&mut e, &f, v1, b0, 1));
        // Not live before its own definition.
        assert!(!live_after_point(&mut e, &f, v1, b0, -1));
    }
}
