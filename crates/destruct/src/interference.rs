//! The interference test of Budimlić et al. ("Fast Copy Coalescing and
//! Live-Range Identification", PLDI 2002), as used by LAO's SSA
//! destruction per §6.2 of the paper:
//!
//! > "The interference test employed was proposed by Budimlić et al.
//! > and uses SSA properties and liveness to determine if two variables
//! > interfere. Basically, it decides whether one variable is live
//! > directly after the instruction that defines the other one."
//!
//! Under strict SSA, two values can only interfere if one's definition
//! dominates the other's; it then suffices to test liveness of the
//! dominating value at the dominated definition point. No interference
//! graph is ever built.
//!
//! The test is written against the workspace-wide
//! [`LivenessProvider`] interface: "live directly after the defining
//! instruction" is exactly a [`ProgramPoint`](fastlive_ir::ProgramPoint)
//! query ([`LivenessProvider::live_at`] at
//! [`Function::def_point`](fastlive_ir::Function::def_point)), so the
//! per-query def-use-chain shim this crate used to carry is gone.
//! Detached definitions (a removed defining instruction) surface as
//! [`PointError`] instead of panicking.

use fastlive_cfg::DomTree;
use fastlive_core::{LivenessProvider, PointError};
use fastlive_ir::{Function, Value};

/// The Budimlić test: do SSA values `a` and `b` interfere (are they
/// simultaneously live somewhere)?
///
/// * If neither definition point dominates the other, the live ranges
///   cannot overlap under strict SSA: no interference.
/// * Otherwise the value defined *higher* is tested for liveness just
///   after the *lower* definition — one point query.
///
/// Two values defined at the same point (two parameters of one block)
/// interfere iff both are still in use at all.
///
/// Errs with [`PointError::DefinitionRemoved`] if either value's
/// defining instruction has been removed from its block.
pub fn values_interfere<E: LivenessProvider>(
    engine: &mut E,
    func: &Function,
    dom: &DomTree,
    a: Value,
    b: Value,
) -> Result<bool, PointError> {
    if a == b {
        return Ok(false);
    }
    let pa = func.def_point(a).ok_or(PointError::DefinitionRemoved(a))?;
    let pb = func.def_point(b).ok_or(PointError::DefinitionRemoved(b))?;
    if pa == pb {
        // Two parameters of the same block (the only way definition
        // points coincide). Entry parameters always conflict: they are
        // bound to distinct argument slots and must keep distinct
        // locations. Other block parameters bind simultaneously and
        // produce no write in the out-of-SSA program, so they conflict
        // exactly when both are ever live.
        if pa.block() == func.entry_block() {
            return Ok(true);
        }
        return Ok(engine.live_at(func, a, pa)? && engine.live_at(func, b, pb)?);
    }
    // Order so that `hi` is defined strictly above `lo`. Note that `lo`
    // being dead does not excuse it: its definition still *writes* the
    // shared location, which must not clobber a live `hi`.
    let (ba, bb) = (pa.block(), pb.block());
    let a_first = if ba == bb {
        pa < pb
    } else if dom.strictly_dominates(ba.as_u32(), bb.as_u32()) {
        true
    } else if dom.strictly_dominates(bb.as_u32(), ba.as_u32()) {
        false
    } else {
        return Ok(false); // incomparable definitions never interfere
    };
    let (hi, lo_point) = if a_first { (a, pb) } else { (b, pa) };
    engine.live_at(func, hi, lo_point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::CheckerEngine;
    use fastlive_cfg::{DfsTree, DomTree};
    use fastlive_ir::{parse_function, ProgramPoint};

    fn setup(src: &str) -> (Function, DomTree, CheckerEngine) {
        let f = parse_function(src).expect("parses");
        let dfs = DfsTree::compute(&f);
        let dom = DomTree::compute(&f, &dfs);
        let engine = CheckerEngine::compute(&f);
        (f, dom, engine)
    }

    fn interfere<E: LivenessProvider>(
        e: &mut E,
        f: &Function,
        dom: &DomTree,
        a: Value,
        b: Value,
    ) -> bool {
        values_interfere(e, f, dom, a, b).expect("no detached definitions in these tests")
    }

    #[test]
    fn overlapping_ranges_interfere() {
        let (f, dom, mut e) = setup(
            "function %f { block0(v0):
                v1 = iconst 1
                v2 = iadd v0, v1
                v3 = iadd v0, v2
                return v3 }",
        );
        let v0 = f.value("v0").unwrap();
        let v1 = f.value("v1").unwrap();
        let v2 = f.value("v2").unwrap();
        let v3 = f.value("v3").unwrap();
        // v0 is live across everything: interferes with v1 and v2.
        assert!(interfere(&mut e, &f, &dom, v0, v1));
        assert!(interfere(&mut e, &f, &dom, v1, v0)); // symmetric
        assert!(interfere(&mut e, &f, &dom, v0, v2));
        // v1 dies at the v2 definition: v1 vs v3 do not interfere.
        assert!(!interfere(&mut e, &f, &dom, v1, v3));
        // A value never interferes with itself.
        assert!(!interfere(&mut e, &f, &dom, v2, v2));
    }

    #[test]
    fn sibling_branches_do_not_interfere() {
        let (f, dom, mut e) = setup(
            "function %f { block0(v0):
                brif v0, block1, block2
            block1:
                v1 = iconst 1
                return v1
            block2:
                v2 = iconst 2
                return v2 }",
        );
        let v1 = f.value("v1").unwrap();
        let v2 = f.value("v2").unwrap();
        assert!(!interfere(&mut e, &f, &dom, v1, v2));
        assert!(!interfere(&mut e, &f, &dom, v2, v1));
    }

    #[test]
    fn same_block_params_interfere_when_both_used() {
        let (f, dom, mut e) = setup(
            "function %f { block0(v0, v1):
                v2 = iadd v0, v1
                return v2 }",
        );
        let v0 = f.value("v0").unwrap();
        let v1 = f.value("v1").unwrap();
        assert!(interfere(&mut e, &f, &dom, v0, v1));
        // Entry parameters conflict even when one is dead: they occupy
        // distinct argument slots.
        let (g, gdom, mut ge) = setup(
            "function %g { block0(v0, v1):
                return v0 }",
        );
        let g0 = g.value("v0").unwrap();
        let g1 = g.value("v1").unwrap();
        assert!(interfere(&mut ge, &g, &gdom, g0, g1));
        // Non-entry sibling parameters with a dead side do not.
        let (h, hdom, mut he) = setup(
            "function %h { block0(v0, v1):
                jump block1(v0, v1)
            block1(v2, v3):
                return v2 }",
        );
        let h2 = h.value("v2").unwrap();
        let h3 = h.value("v3").unwrap();
        assert!(!interfere(&mut he, &h, &hdom, h2, h3));
    }

    #[test]
    fn live_through_a_loop_interferes_with_loop_values() {
        let (f, dom, mut e) = setup(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        );
        let v0 = f.value("v0").unwrap(); // loop bound, live throughout
        let v2 = f.value("v2").unwrap(); // loop-carried counter
        let v4 = f.value("v4").unwrap();
        assert!(interfere(&mut e, &f, &dom, v0, v2));
        assert!(interfere(&mut e, &f, &dom, v0, v4));
        // v2 dies at the iadd; v4 defined there: no interference...
        // except v2 is *not* used after v4's def and not live-out:
        assert!(!interfere(&mut e, &f, &dom, v2, v4));
    }

    #[test]
    fn point_queries_respect_positions() {
        let (f, _, mut e) = setup(
            "function %f { block0(v0):
                v1 = iconst 1
                v2 = iadd v0, v1
                return v2 }",
        );
        let b0 = f.entry_block();
        let v1 = f.value("v1").unwrap();
        // v1 live after its def (pos 0), dead after the iadd (pos 1).
        assert_eq!(e.live_at(&f, v1, ProgramPoint::after(b0, 0)), Ok(true));
        assert_eq!(e.live_at(&f, v1, ProgramPoint::after(b0, 1)), Ok(false));
        // Not live before its own definition (the block entry).
        assert_eq!(e.live_at(&f, v1, ProgramPoint::block_entry(b0)), Ok(false));
        assert_eq!(e.live_after_def(&f, v1), Ok(true));
    }

    #[test]
    fn detached_definition_surfaces_as_an_error() {
        let (mut f, _, _) = setup(
            "function %f { block0(v0):
                v1 = iconst 1
                return v0 }",
        );
        let v1 = f.value("v1").unwrap();
        let dead = f.block_insts(f.entry_block())[0];
        f.remove_inst(dead);
        // Recompute dominators/engine on the edited function.
        let dfs = DfsTree::compute(&f);
        let dom = DomTree::compute(&f, &dfs);
        let mut e = CheckerEngine::compute(&f);
        let v0 = f.value("v0").unwrap();
        assert_eq!(
            values_interfere(&mut e, &f, &dom, v0, v1),
            Err(PointError::DefinitionRemoved(v1))
        );
    }
}
