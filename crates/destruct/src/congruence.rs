use fastlive_ir::Value;

/// φ-congruence classes: a union-find over SSA values with member
/// lists at the roots.
///
/// Sreedhar et al.: "the phi congruence class of a resource represents
/// all resources that must be assigned the same location" — after the
/// pass, every class maps to one variable of the out-of-SSA program.
///
/// # Examples
///
/// ```
/// use fastlive_destruct::Congruence;
/// use fastlive_ir::Value;
///
/// let mut c = Congruence::new(4);
/// let v = |i| Value::from_index(i);
/// c.union(v(0), v(2));
/// assert_eq!(c.find(v(0)), c.find(v(2)));
/// assert_ne!(c.find(v(0)), c.find(v(1)));
/// let root = c.find(v(0));
/// assert_eq!(c.members(root).len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Congruence {
    parent: Vec<u32>,
    /// Member lists, meaningful at roots only.
    members: Vec<Vec<Value>>,
}

impl Congruence {
    /// Creates singleton classes for values `0..n`.
    pub fn new(n: usize) -> Self {
        Congruence {
            parent: (0..n as u32).collect(),
            members: (0..n).map(|i| vec![Value::from_index(i)]).collect(),
        }
    }

    /// Makes sure values up to index `n - 1` exist (new values created
    /// by copy insertion join as singletons).
    pub fn ensure(&mut self, n: usize) {
        while self.parent.len() < n {
            let i = self.parent.len() as u32;
            self.parent.push(i);
            self.members.push(vec![Value::from_index(i as usize)]);
        }
    }

    /// Root of `v`'s class (path-compressing).
    pub fn find(&mut self, v: Value) -> Value {
        let mut x = v.index() as u32;
        // Find the root.
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Compress.
        while self.parent[x as usize] != root {
            let next = self.parent[x as usize];
            self.parent[x as usize] = root;
            x = next;
        }
        Value::from_index(root as usize)
    }

    /// Non-mutating root lookup (no compression).
    pub fn find_const(&self, v: Value) -> Value {
        let mut x = v.index() as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        Value::from_index(x as usize)
    }

    /// Merges the classes of `a` and `b`; returns the new root.
    pub fn union(&mut self, a: Value, b: Value) -> Value {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        // Union by size keeps member moves cheap.
        let (big, small) = if self.members[ra.index()].len() >= self.members[rb.index()].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small.index()] = big.index() as u32;
        let moved = std::mem::take(&mut self.members[small.index()]);
        self.members[big.index()].extend(moved);
        big
    }

    /// Members of the class rooted at `root` (call [`find`](Self::find)
    /// first).
    pub fn members(&self, root: Value) -> &[Value] {
        &self.members[root.index()]
    }

    /// Iterates all distinct class roots with at least `min` members.
    pub fn roots(&self, min: usize) -> impl Iterator<Item = Value> + '_ {
        self.parent.iter().enumerate().filter_map(move |(i, &p)| {
            (p == i as u32 && self.members[i].len() >= min).then_some(Value::from_index(i))
        })
    }

    /// Number of tracked values.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if no values are tracked.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Value {
        Value::from_index(i)
    }

    #[test]
    fn singletons_then_unions() {
        let mut c = Congruence::new(5);
        assert_eq!(c.find(v(3)), v(3));
        let r = c.union(v(1), v(3));
        assert_eq!(c.find(v(1)), r);
        assert_eq!(c.find(v(3)), r);
        let mut m = c.members(r).to_vec();
        m.sort_unstable();
        assert_eq!(m, vec![v(1), v(3)]);
        // Other classes untouched.
        let r0 = c.find(v(0));
        assert_eq!(c.members(r0), &[v(0)]);
    }

    #[test]
    fn union_is_idempotent_and_transitive() {
        let mut c = Congruence::new(4);
        c.union(v(0), v(1));
        c.union(v(1), v(2));
        let r = c.union(v(0), v(2)); // already same class
        assert_eq!(c.members(r).len(), 3);
        assert_eq!(c.find_const(v(2)), r);
    }

    #[test]
    fn ensure_grows_with_singletons() {
        let mut c = Congruence::new(2);
        c.ensure(5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.find(v(4)), v(4));
        c.ensure(3); // shrinking is a no-op
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn roots_filters_by_size() {
        let mut c = Congruence::new(4);
        c.union(v(0), v(1));
        let big: Vec<Value> = c.roots(2).collect();
        assert_eq!(big.len(), 1);
        let all: Vec<Value> = c.roots(1).collect();
        assert_eq!(all.len(), 3);
        assert!(!c.is_empty());
    }
}
