//! The Method III pass of Sreedhar et al. ("Translating Out of Static
//! Single Assignment Form", SAS 1999), driving every liveness query the
//! paper's Table 2 measures.

use fastlive_cfg::{DfsTree, DomTree};
use fastlive_construct::PreFunction;
use fastlive_core::{LivenessProvider, PointError};
use fastlive_graph::Cfg as _;
use fastlive_ir::{
    split_critical_edges, Block, Function, Inst, InstData, ProgramPoint, UnaryOp, Value,
};

use crate::congruence::Congruence;
use crate::interference::values_interfere;
use crate::out_of_ssa::out_of_ssa;

/// The flavor of a recorded liveness query.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// `live_in(value, block)`.
    LiveIn,
    /// `live_out(value, block)`.
    LiveOut,
    /// `live_at(value, point)` — a program-point query (the Budimlić
    /// "live directly after the defining instruction" test). The
    /// record's `block` field is the point's block.
    LiveAt {
        /// Layout index of the instruction the point follows, or
        /// `None` for the block entry.
        after_inst: Option<u32>,
    },
}

/// One liveness query issued by the pass — the unit of the paper's
/// query-time measurement. Recorded so benchmarks can replay the exact
/// same stream against different engines.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct QueryRecord {
    /// Live-in, live-out, or a program-point query.
    pub kind: QueryKind,
    /// Queried value.
    pub value: Value,
    /// Queried block (the point's block for [`QueryKind::LiveAt`]).
    pub block: Block,
}

impl QueryRecord {
    /// The queried program point of a [`QueryKind::LiveAt`] record.
    pub fn point(&self) -> Option<ProgramPoint> {
        match self.kind {
            QueryKind::LiveAt { after_inst: None } => Some(ProgramPoint::block_entry(self.block)),
            QueryKind::LiveAt {
                after_inst: Some(i),
            } => Some(ProgramPoint::after(self.block, i as usize)),
            _ => None,
        }
    }
}

/// Counters and the query log of one destruction run.
#[derive(Clone, Debug, Default)]
pub struct DestructStats {
    /// Every block-liveness query, in issue order.
    pub queries: Vec<QueryRecord>,
    /// Pairwise Budimlić interference tests performed.
    pub interference_tests: usize,
    /// `copy` instructions inserted (Sreedhar's repair).
    pub copies_inserted: usize,
    /// φ-functions (non-entry block parameters) processed.
    pub phis_processed: usize,
    /// Critical edges split before the pass.
    pub split_edges: usize,
    /// Copies that later coalesced away (`x = x` after renaming).
    pub copies_coalesced: usize,
    /// φs that needed the full-copy (Method I) fallback.
    pub fallback_phis: usize,
}

/// Everything a destruction run produces.
#[derive(Clone, Debug)]
pub struct DestructResult {
    /// The SSA function after edge splitting and copy insertion (φs
    /// still present) — useful for inspection and further queries.
    pub func: Function,
    /// The out-of-SSA program over mutable variables.
    pub pre: PreFunction,
    /// Final φ-congruence classes.
    pub classes: Congruence,
    /// Counters and the query log.
    pub stats: DestructStats,
}

/// Records every query an engine answers.
struct Recording<E> {
    inner: E,
    log: Vec<QueryRecord>,
}

impl<E: LivenessProvider> LivenessProvider for Recording<E> {
    fn live_in(&mut self, func: &Function, v: Value, b: Block) -> bool {
        self.log.push(QueryRecord {
            kind: QueryKind::LiveIn,
            value: v,
            block: b,
        });
        self.inner.live_in(func, v, b)
    }
    fn live_out(&mut self, func: &Function, v: Value, b: Block) -> bool {
        self.log.push(QueryRecord {
            kind: QueryKind::LiveOut,
            value: v,
            block: b,
        });
        self.inner.live_out(func, v, b)
    }
    fn live_at(&mut self, func: &Function, v: Value, p: ProgramPoint) -> Result<bool, PointError> {
        // One record per point query regardless of how the inner
        // engine answers it (native fast path or the default
        // decomposition), so every engine produces the *same* stream.
        self.log.push(QueryRecord {
            kind: QueryKind::LiveAt {
                after_inst: p.inst_index().map(|i| i as u32),
            },
            value: v,
            block: p.block(),
        });
        self.inner.live_at(func, v, p)
    }
    fn invalidate_value(&mut self, func: &Function, v: Value) {
        self.inner.invalidate_value(func, v);
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// One φ resource: the value, the block whose exit (for arguments) or
/// entry (for the result) hosts it, and where to patch a copy in.
#[derive(Clone, Debug)]
enum Resource {
    /// The φ result: parameter `index` of `block`.
    Result { value: Value, block: Block },
    /// A φ argument: `args[arg_index]` of `target_index`-th target of
    /// the predecessor's terminator.
    Arg {
        value: Value,
        pred: Block,
        term: Inst,
        target_index: usize,
        arg_index: usize,
    },
}

impl Resource {
    fn value(&self) -> Value {
        match self {
            Resource::Result { value, .. } | Resource::Arg { value, .. } => *value,
        }
    }
    /// The block whose liveness decides conflicts at this resource:
    /// the φ block for the result, the predecessor for arguments.
    fn location(&self) -> Block {
        match self {
            Resource::Result { block, .. } => *block,
            Resource::Arg { pred, .. } => *pred,
        }
    }
}

/// Runs SSA destruction on `func` with a liveness engine built by
/// `make_engine` *after* critical edges are split (engines precompute
/// against the final CFG).
///
/// The engine choice changes performance, never results: the pass makes
/// identical decisions with any correct [`LivenessProvider`], which the
/// cross-engine tests assert.
///
/// # Examples
///
/// ```
/// use fastlive_destruct::{destruct_ssa, CheckerEngine};
/// use fastlive_ir::parse_function;
///
/// let f = parse_function(
///     "function %loop { block0(v0):
///          v1 = iconst 0
///          jump block1(v1)
///      block1(v2):
///          v3 = iconst 1
///          v4 = iadd v2, v3
///          v5 = icmp_slt v4, v0
///          brif v5, block1(v4), block2
///      block2:
///          return v4 }",
/// )?;
/// let result = destruct_ssa(f, CheckerEngine::compute);
/// assert!(result.stats.phis_processed >= 1);
/// assert!(!result.stats.queries.is_empty());
/// // The out-of-SSA program still counts to five:
/// let out = fastlive_construct::run_pre(&result.pre, &[5], 1_000).unwrap();
/// assert_eq!(out.returned, vec![5]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn destruct_ssa<E, F>(mut func: Function, make_engine: F) -> DestructResult
where
    E: LivenessProvider,
    F: FnOnce(&Function) -> E,
{
    let mut stats = DestructStats {
        split_edges: split_critical_edges(&mut func).len(),
        ..DestructStats::default()
    };

    let dfs = DfsTree::compute(&func);
    let dom = DomTree::compute(&func, &dfs);
    let mut engine = Recording {
        inner: make_engine(&func),
        log: Vec::new(),
    };
    let mut classes = Congruence::new(func.num_values());

    let entry = func.entry_block();
    let blocks: Vec<Block> = func.blocks().collect();
    for &b in &blocks {
        if b == entry {
            continue; // entry parameters are function parameters, not φs
        }
        for pi in 0..func.block_params(b).len() {
            stats.phis_processed += 1;
            // The pass only inserts copies — it never removes a
            // definition — so point queries cannot hit a detached def.
            process_phi(
                &mut func,
                &dom,
                &mut engine,
                &mut classes,
                &mut stats,
                b,
                pi,
            )
            .expect("SSA destruction never detaches definitions");
        }
    }

    let pre = out_of_ssa(&func, &mut classes, &mut stats);
    stats.queries = engine.log;
    DestructResult {
        func,
        pre,
        classes,
        stats,
    }
}

/// Handles one φ: pairwise class-interference analysis, Sreedhar's
/// copy-placement case analysis, copy insertion, class merge.
fn process_phi<E: LivenessProvider>(
    func: &mut Function,
    dom: &DomTree,
    engine: &mut Recording<E>,
    classes: &mut Congruence,
    stats: &mut DestructStats,
    block: Block,
    pi: usize,
) -> Result<(), PointError> {
    // Gather the resources: result + one argument per incoming edge.
    let mut resources: Vec<Resource> = vec![Resource::Result {
        value: func.block_params(block)[pi],
        block,
    }];
    let mut preds: Vec<Block> = func
        .preds(block.as_u32())
        .iter()
        .map(|&p| Block::from_index(p as usize))
        .collect();
    preds.dedup();
    for pred in preds {
        let term = func.terminator(pred).expect("predecessor is terminated");
        for (ti, call) in func.inst_data(term).branch_targets().iter().enumerate() {
            if call.block == block {
                resources.push(Resource::Arg {
                    value: call.args[pi],
                    pred,
                    term,
                    target_index: ti,
                    arg_index: pi,
                });
            }
        }
    }

    // Pairwise analysis over distinct congruence classes. A resource
    // needs a copy when its class conflicts at the other resource's
    // location (Sreedhar's four cases; the unresolved fourth case is
    // resolved conservatively by copying the first side).
    let mut needs_copy = vec![false; resources.len()];
    for i in 0..resources.len() {
        for j in i + 1..resources.len() {
            let (ri, rj) = (&resources[i], &resources[j]);
            let (ci, cj) = (classes.find(ri.value()), classes.find(rj.value()));
            if ci == cj {
                continue; // same class: never a conflict
            }
            if !classes_interfere(func, dom, engine, classes, stats, ci, cj)? {
                continue;
            }
            let ci_live_at_j = class_live_at(func, engine, classes, ci, rj);
            let cj_live_at_i = class_live_at(func, engine, classes, cj, ri);
            match (ci_live_at_j, cj_live_at_i) {
                (true, false) => needs_copy[i] = true,
                (false, true) => needs_copy[j] = true,
                (true, true) => {
                    needs_copy[i] = true;
                    needs_copy[j] = true;
                }
                // Sreedhar defers this pair and later copies one side if
                // the conflict persists; copying side i is the sound
                // conservative resolution.
                (false, false) => needs_copy[i] = true,
            }
        }
    }

    // Insert the planned copies.
    let mut copied = vec![false; resources.len()];
    for idx in 0..resources.len() {
        if needs_copy[idx] {
            insert_copy(func, engine, classes, stats, &mut resources[idx]);
            copied[idx] = true;
        }
    }

    // Safety net: the merged class must be interference-free, or the
    // out-of-SSA sharing would clobber live values (the classic swap /
    // lost-copy problems surface exactly here). If any conflict
    // remains, fall back to Sreedhar's Method I for this φ: isolate
    // every resource behind its own copy, which always yields a clean
    // class (each copy lives only on its edge, the parameter only up
    // to its result copy).
    if !merged_class_is_clean(func, dom, engine, classes, stats, &resources)? {
        stats.fallback_phis += 1;
        for idx in 0..resources.len() {
            if !copied[idx] {
                insert_copy(func, engine, classes, stats, &mut resources[idx]);
                copied[idx] = true;
            }
        }
        debug_assert!(
            merged_class_is_clean(func, dom, engine, classes, stats, &resources)?,
            "full-copy fallback must produce an interference-free class"
        );
    }

    // Merge every resource into one φ-congruence class.
    let first = resources[0].value();
    for r in &resources[1..] {
        classes.union(first, r.value());
    }
    Ok(())
}

/// Repairs one resource with a `copy`:
/// * result `x0 = φ(..)` becomes `x0' = φ(..); x0 = copy x0'` — the
///   parameter keeps the φ role, every other use moves to the copy;
/// * argument `xi` gets `xi' = copy xi` at the end of its predecessor,
///   and the branch passes `xi'`.
///
/// Set-based engines are told about the values whose use sets changed
/// (`invalidate_value`), mirroring the liveness maintenance Sreedhar's
/// algorithm performs — the paper's checker ignores the notification.
fn insert_copy<E: LivenessProvider>(
    func: &mut Function,
    engine: &mut Recording<E>,
    classes: &mut Congruence,
    stats: &mut DestructStats,
    resource: &mut Resource,
) {
    stats.copies_inserted += 1;
    match *resource {
        Resource::Result { value, block } => {
            let copy = func.insert_inst(
                block,
                0,
                InstData::Unary {
                    op: UnaryOp::Copy,
                    arg: value,
                },
            );
            let fresh = func.inst_result(copy).expect("copy has a result");
            func.replace_uses_except(value, fresh, copy);
            classes.ensure(func.num_values());
            engine.invalidate_value(func, value);
            // `value` (the parameter) remains this resource.
        }
        Resource::Arg {
            value,
            pred,
            term,
            target_index,
            arg_index,
        } => {
            let pos = func.block_insts(pred).len() - 1;
            let copy = func.insert_inst(
                pred,
                pos,
                InstData::Unary {
                    op: UnaryOp::Copy,
                    arg: value,
                },
            );
            let fresh = func.inst_result(copy).expect("copy has a result");
            func.set_branch_arg(term, target_index, arg_index, fresh);
            classes.ensure(func.num_values());
            engine.invalidate_value(func, value);
            *resource = Resource::Arg {
                value: fresh,
                pred,
                term,
                target_index,
                arg_index,
            };
        }
    }
}

/// Would merging all resource classes produce an interference-free
/// class? Pairwise Budimlić over the union's members.
fn merged_class_is_clean<E: LivenessProvider>(
    func: &Function,
    dom: &DomTree,
    engine: &mut Recording<E>,
    classes: &mut Congruence,
    stats: &mut DestructStats,
    resources: &[Resource],
) -> Result<bool, PointError> {
    let mut roots: Vec<Value> = resources.iter().map(|r| classes.find(r.value())).collect();
    roots.sort_unstable();
    roots.dedup();
    let members: Vec<Value> = roots
        .iter()
        .flat_map(|&r| classes.members(r).iter().copied())
        .collect();
    for i in 0..members.len() {
        for j in i + 1..members.len() {
            stats.interference_tests += 1;
            if values_interfere(engine, func, dom, members[i], members[j])? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Do two congruence classes interfere? Pairwise Budimlić tests over
/// the members — the query pattern §6.2 describes ("tests interference
/// of certain SSA variables ... whether one variable is live directly
/// after the instruction that defines the other one").
fn classes_interfere<E: LivenessProvider>(
    func: &Function,
    dom: &DomTree,
    engine: &mut Recording<E>,
    classes: &mut Congruence,
    stats: &mut DestructStats,
    ci: Value,
    cj: Value,
) -> Result<bool, PointError> {
    let members_i = classes.members(ci).to_vec();
    let members_j = classes.members(cj).to_vec();
    for &a in &members_i {
        for &b in &members_j {
            stats.interference_tests += 1;
            if values_interfere(engine, func, dom, a, b)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Is any member of class `c` live at the location of `resource`?
/// Live-out of the predecessor for arguments; live-in of the φ block
/// for the result (the φ's parallel bindings happen on the edges, so
/// a value live *into* the block conflicts with the binding).
fn class_live_at<E: LivenessProvider>(
    func: &Function,
    engine: &mut Recording<E>,
    classes: &mut Congruence,
    c: Value,
    resource: &Resource,
) -> bool {
    let loc = resource.location();
    let members = classes.members(c).to_vec();
    members.iter().any(|&m| match resource {
        Resource::Result { .. } => engine.live_in(func, m, loc),
        Resource::Arg { .. } => engine.live_out(func, m, loc),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{BitvecEngine, CheckerEngine, NativeEngine};
    use fastlive_construct::run_pre;
    use fastlive_dataflow::{IterativeLiveness, LaoLiveness, VarUniverse};
    use fastlive_ir::{interp, parse_function};

    fn loop_src() -> &'static str {
        "function %loop { block0(v0):
            v1 = iconst 0
            jump block1(v1)
        block1(v2):
            v3 = iconst 1
            v4 = iadd v2, v3
            v5 = icmp_slt v4, v0
            brif v5, block1(v4), block2
        block2:
            return v4 }"
    }

    /// The swap pattern: two φs exchanging values around a loop — the
    /// classic case where naive copy insertion breaks and interference
    /// analysis must keep the classes apart.
    fn swap_src() -> &'static str {
        "function %swap { block0(v0, v1, v2):
            jump block1(v0, v1, v2)
        block1(v3, v4, v5):
            v6 = iconst 1
            v7 = isub v5, v6
            v8 = icmp_slt v6, v5
            brif v8, block1(v4, v3, v7), block2
        block2:
            return v3, v4 }"
    }

    fn run_all_inputs(src: &str, inputs: &[Vec<i64>]) {
        let original = parse_function(src).unwrap();
        let result = destruct_ssa(original.clone(), CheckerEngine::compute);
        for args in inputs {
            let want = interp::run(&original, args, 100_000).expect("ssa runs");
            let got = run_pre(&result.pre, args, 200_000).expect("pre runs");
            assert_eq!(
                got.returned, want.returned,
                "inputs {args:?}\n{}",
                result.func
            );
        }
    }

    #[test]
    fn simple_loop_round_trips() {
        run_all_inputs(loop_src(), &[vec![0], vec![1], vec![5], vec![-3]]);
    }

    #[test]
    fn swap_loop_round_trips() {
        run_all_inputs(
            swap_src(),
            &[
                vec![10, 20, 0],
                vec![10, 20, 1],
                vec![10, 20, 2],
                vec![10, 20, 7],
            ],
        );
    }

    #[test]
    fn swap_needs_copies() {
        let f = parse_function(swap_src()).unwrap();
        let result = destruct_ssa(f, CheckerEngine::compute);
        // Swapping φs cannot be coalesced into single variables without
        // at least one repair copy.
        assert!(result.stats.copies_inserted >= 1, "{:?}", result.stats);
        assert!(result.stats.interference_tests > 0);
    }

    #[test]
    fn straight_line_needs_no_copies() {
        let f = parse_function(loop_src()).unwrap();
        let result = destruct_ssa(f, CheckerEngine::compute);
        // The counting loop coalesces completely: v1, v2, v4 share one
        // variable, no copies required.
        assert_eq!(result.stats.copies_inserted, 0, "{:?}", result.stats);
        assert!(result.stats.phis_processed == 1);
    }

    #[test]
    fn all_engines_make_identical_decisions() {
        for src in [loop_src(), swap_src()] {
            let f = parse_function(src).unwrap();
            let with_checker = destruct_ssa(f.clone(), CheckerEngine::compute);
            let with_native = destruct_ssa(f.clone(), |func| {
                NativeEngine::new(
                    LaoLiveness::compute(func, &VarUniverse::phi_related(func)),
                    func,
                )
            });
            let with_bitvec = destruct_ssa(f.clone(), |func| {
                BitvecEngine::new(
                    IterativeLiveness::compute(func, &VarUniverse::all(func)),
                    func,
                )
            });
            assert_eq!(
                with_checker.stats.copies_inserted, with_native.stats.copies_inserted,
                "checker vs native on {}",
                f.name
            );
            assert_eq!(
                with_checker.stats.copies_inserted, with_bitvec.stats.copies_inserted,
                "checker vs bitvec on {}",
                f.name
            );
            // Identical query streams (same decisions, same order).
            assert_eq!(with_checker.stats.queries, with_native.stats.queries);
            assert_eq!(with_checker.stats.queries, with_bitvec.stats.queries);
            // And identical out-of-SSA behaviour.
            let inputs: Vec<Vec<i64>> = match f.params().len() {
                1 => vec![vec![4]],
                _ => vec![vec![10, 20, 3]],
            };
            for args in inputs {
                assert_eq!(
                    run_pre(&with_checker.pre, &args, 100_000).unwrap().returned,
                    run_pre(&with_native.pre, &args, 100_000).unwrap().returned,
                );
            }
        }
    }

    #[test]
    fn critical_edges_are_split_first() {
        // brif with an edge straight into a multi-pred block.
        let f = parse_function(
            "function %ce { block0(v0):
                brif v0, block1, block2
            block1:
                jump block2
            block2:
                return v0 }",
        )
        .unwrap();
        let result = destruct_ssa(f, CheckerEngine::compute);
        assert_eq!(result.stats.split_edges, 1);
        assert_eq!(run_pre(&result.pre, &[1], 100).unwrap().returned, vec![1]);
    }

    #[test]
    fn phi_of_dead_after_join_value_coalesces_free() {
        // Both arms pass the same value, which dies at the join: the
        // φ coalesces with its argument without copies.
        let f = parse_function(
            "function %same { block0(v0, v9):
                brif v0, block1, block2
            block1:
                jump block3(v9)
            block2:
                jump block3(v9)
            block3(v1):
                v2 = iadd v1, v1
                return v2 }",
        )
        .unwrap();
        let result = destruct_ssa(f, CheckerEngine::compute);
        assert_eq!(result.stats.copies_inserted, 0, "{}", result.func);
        assert_eq!(
            run_pre(&result.pre, &[1, 21], 100).unwrap().returned,
            vec![42]
        );
        assert_eq!(
            run_pre(&result.pre, &[0, 21], 100).unwrap().returned,
            vec![42]
        );
    }

    #[test]
    fn phi_arg_live_past_join_needs_copies() {
        // v9 flows into the φ *and* is used after the join: plain
        // Method III (no value-equality refinement) must isolate the
        // arguments behind copies.
        let f = parse_function(
            "function %same2 { block0(v0, v9):
                brif v0, block1, block2
            block1:
                jump block3(v9)
            block2:
                jump block3(v9)
            block3(v1):
                v2 = iadd v1, v9
                return v2 }",
        )
        .unwrap();
        let result = destruct_ssa(f, CheckerEngine::compute);
        assert!(result.stats.copies_inserted >= 1, "{}", result.func);
        assert_eq!(
            run_pre(&result.pre, &[1, 21], 100).unwrap().returned,
            vec![42]
        );
        assert_eq!(
            run_pre(&result.pre, &[0, 21], 100).unwrap().returned,
            vec![42]
        );
    }
}
