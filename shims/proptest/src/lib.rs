//! A minimal, offline stand-in for the `proptest` property-testing
//! crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the slice of proptest's API that the fastlive test suite
//! uses: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`strategy::Just`], `any`, [`collection::vec`] /
//! [`collection::btree_set`], `prelude::ProptestConfig` and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case panics with the assertion message
//!   and the deterministic case seed, not a minimized counterexample;
//! * generation is driven by a fixed SplitMix64 stream seeded from the
//!   test name (override with `PROPTEST_SEED`), so failures reproduce
//!   across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Per-test configuration (only the `cases` knob is honored).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// The deterministic generator behind every strategy.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from `PROPTEST_SEED` when set, else from a hash of the
        /// test name — deterministic either way.
        pub fn for_test(name: &str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                    })
                });
            TestRng { state: seed }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree: `generate` yields a
    /// plain value and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy {self:?}");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    self.start() + rng.below(span) as $ty
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),+) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A target size (or size range) for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.max_exclusive - self.min) as u64;
            self.min + rng.below(span.max(1)) as usize
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>`; duplicates shrink the actual size,
    /// matching real proptest's behavior.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::btree_set`: a set of `element` values.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that draws `cases` random inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `prop_assert!` without shrinking: a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` without shrinking: a plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` without shrinking: a plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::generate(&(5usize..=5), &mut rng);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn flat_map_builds_dependent_values() {
        let mut rng = TestRng::for_test("flat_map");
        let strat = (2usize..10).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..(n as u32), n)).prop_map(|(n, v)| (n, v))
        });
        for _ in 0..200 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| (x as usize) < n));
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(xs in crate::collection::vec(0u32..100, 0..20), flip in any::<bool>()) {
            prop_assert!(xs.len() < 20);
            let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            if flip {
                prop_assert_ne!(1, 2);
            }
        }
    }
}
