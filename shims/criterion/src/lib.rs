//! A minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the small slice of criterion's API that the `fastlive-bench`
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurements are median-of-samples wall
//! times from [`std::time::Instant`], with iteration counts calibrated
//! so each sample runs for at least a millisecond.
//!
//! Differences from real criterion, deliberately accepted:
//!
//! * no statistical analysis beyond median/min, no HTML reports;
//! * results go to stdout, and — when `FASTLIVE_BENCH_JSON` names a
//!   file — as JSON lines appended to that file;
//! * `cargo test` runs each benchmark closure exactly once (criterion's
//!   `--test` mode), so the tier-1 suite stays fast.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], criterion's optimizer fence.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (informational).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("scan", 128)` renders as `scan/128`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/function/parameter`.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Optional throughput annotation.
    pub throughput: Option<u64>,
}

/// The harness entry point; collects results across groups.
pub struct Criterion {
    results: Vec<BenchResult>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Only measure for real in the
        // latter case.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            results: Vec::new(),
            test_mode,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn report(&mut self, result: BenchResult) {
        if !self.test_mode {
            println!(
                "{:<56} median {:>12.1} ns/iter  (min {:>12.1}, {} samples)",
                result.id, result.median_ns, result.min_ns, result.samples
            );
        }
        self.results.push(result);
    }
}

impl Drop for Criterion {
    /// Appends JSON-lines results to `$FASTLIVE_BENCH_JSON` if set.
    fn drop(&mut self) {
        let Ok(path) = std::env::var("FASTLIVE_BENCH_JSON") else {
            return;
        };
        if self.test_mode || self.results.is_empty() {
            return;
        }
        let mut out = String::new();
        for r in &self.results {
            let _ = writeln!(
                out,
                "{{\"id\":\"{}\",\"median_ns\":{:.2},\"min_ns\":{:.2},\"samples\":{}}}",
                r.id, r.median_ns, r.min_ns, r.samples
            );
        }
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = f.write_all(out.as_bytes());
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (criterion's knob; min 5 here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        });
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (all reporting already happened incrementally).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size,
            median_ns: 0.0,
            min_ns: 0.0,
        };
        f(&mut bencher);
        self.criterion.report(BenchResult {
            id: full,
            median_ns: bencher.median_ns,
            min_ns: bencher.min_ns,
            samples: if bencher.test_mode {
                1
            } else {
                bencher.samples
            },
            throughput: self.throughput,
        });
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    median_ns: f64,
    min_ns: f64,
}

impl Bencher {
    /// Measures `work`: calibrates an iteration count so one sample
    /// takes ≥ 1 ms, then records `samples` samples and keeps the
    /// median and minimum per-iteration time.
    pub fn iter<T>(&mut self, mut work: impl FnMut() -> T) {
        if self.test_mode {
            black_box(work());
            return;
        }
        // Calibrate: grow iters until a batch takes at least ~1 ms.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(work());
            }
            let ns = t0.elapsed().as_nanos() as u64;
            if ns >= 1_000_000 || iters >= 1 << 24 {
                break;
            }
            iters = if ns == 0 {
                iters * 16
            } else {
                (iters * 2).max(iters * 1_200_000 / ns.max(1))
            };
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(work());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        self.median_ns = per_iter[per_iter.len() / 2];
        self.min_ns = per_iter[0];
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main`, running every group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
