//! Differential property suite for the facade's three backends
//! (ISSUE 5): `Direct` (per-function checker), `Session`
//! (engine-cached) and `Oracle` (iterative dataflow) must produce
//! **byte-identical** `Response`s for any `Query` — over reducible,
//! goto-injected irreducible and deep-live workloads, for every query
//! kind, and for both execution styles (scalar `query` and planned
//! `run_queries`).

use fastlive::workload::{generate_module, ModuleParams};
use fastlive::{BackendKind, Fastlive, Module, PointRef, Query, QueryError, Response};

/// A module drawn from one of the three workload regimes.
fn test_module(seed: u64, irreducible_per_mille: u32, deep_live_per_mille: u32) -> Module {
    generate_module(
        "facade",
        ModuleParams {
            functions: 3,
            min_blocks: 4,
            max_blocks: 16,
            irreducible_per_mille,
            deep_live_per_mille,
        },
        seed,
    )
}

/// A mixed query batch covering every `Query` variant, alternating
/// name- and id-addressing so both resolution paths are exercised.
fn mixed_queries(module: &Module) -> Vec<Query> {
    let mut queries = Vec::new();
    for (id, func) in module.iter() {
        let name = func.name.clone();
        let values: Vec<_> = func.values().collect();
        let blocks: Vec<_> = func.blocks().collect();
        for (vi, &v) in values.iter().enumerate() {
            for (bi, &b) in blocks.iter().enumerate() {
                // Alternate addressing modes query by query.
                if (vi + bi) % 2 == 0 {
                    queries.push(Query::live_in(id, v, b));
                    queries.push(Query::live_out(name.as_str(), format!("v{vi}"), b));
                } else {
                    queries.push(Query::live_in(name.as_str(), v, format!("block{bi}")));
                    queries.push(Query::live_out(id, format!("v{vi}"), format!("block{bi}")));
                }
            }
            // Nullness-family probes: the fact at the definition, and
            // definite-initialization against a rotating block sample
            // (alternating addressing like the liveness probes above).
            if vi % 2 == 0 {
                queries.push(Query::nullness(id, v));
            } else {
                queries.push(Query::nullness(name.as_str(), format!("v{vi}")));
            }
            for (bi, &b) in blocks.iter().enumerate().step_by(2) {
                if (vi + bi) % 2 == 0 {
                    queries.push(Query::definitely_init(id, v, b));
                } else {
                    queries.push(Query::definitely_init(
                        name.as_str(),
                        format!("v{vi}"),
                        format!("block{bi}"),
                    ));
                }
            }
            // Point queries: block entries plus a sweep of one block's
            // interior positions.
            let b = blocks[vi % blocks.len()];
            queries.push(Query::live_at(id, v, PointRef::entry(b)));
            for pos in 0..func.block_insts(b).len().min(3) {
                queries.push(Query::live_at(id, v, PointRef::after(b, pos)));
                queries.push(Query::live_at(id, v, PointRef::before(b, pos)));
            }
        }
        // Interference over a sliding window of value pairs.
        for w in values.windows(2) {
            queries.push(Query::interfere(id, w[0], w[1]));
        }
        queries.push(Query::live_sets(id));
        queries.push(Query::live_sets(name.as_str()));
    }
    queries
}

fn run_all(
    fl: &Fastlive,
    module: &Module,
    kind: BackendKind,
    queries: &[Query],
) -> Vec<Result<Response, QueryError>> {
    fl.session_with(module, kind).run_queries(module, queries)
}

#[test]
fn three_backends_answer_byte_identically() {
    let regimes = [
        ("reducible", 0u32, 0u32),
        ("irreducible", 500, 0),
        ("deep_live", 250, 1000),
    ];
    let fl = Fastlive::builder()
        .threads(1)
        .build()
        .expect("default-ish config is valid");
    for (regime, irr, deep) in regimes {
        for seed in [0x51u64, 0x1132, 0xfa2e] {
            let module = test_module(seed, irr, deep);
            let queries = mixed_queries(&module);
            assert!(queries.len() >= 64, "representative batch size");
            let direct = run_all(&fl, &module, BackendKind::Direct, &queries);
            let session = run_all(&fl, &module, BackendKind::Session, &queries);
            let oracle = run_all(&fl, &module, BackendKind::Oracle, &queries);
            for (i, q) in queries.iter().enumerate() {
                assert_eq!(
                    direct[i], session[i],
                    "[{regime} seed {seed:#x}] direct vs session on {q:?}"
                );
                assert_eq!(
                    direct[i], oracle[i],
                    "[{regime} seed {seed:#x}] direct vs oracle on {q:?}"
                );
            }
        }
    }
}

#[test]
fn planned_execution_matches_scalar_execution() {
    // The acceptance-criterion shape: a ≥64-query mixed batch must
    // answer identically under `run_queries` (grouped, batch-row
    // block probes) and a one-at-a-time loop — on every backend.
    let fl = Fastlive::builder().threads(1).build().expect("valid");
    for (irr, deep) in [(0u32, 0u32), (500, 0), (250, 1000)] {
        let module = test_module(0xbeef ^ u64::from(irr * 2 + deep), irr, deep);
        let queries = mixed_queries(&module);
        assert!(queries.len() >= 64);
        for kind in [
            BackendKind::Direct,
            BackendKind::Session,
            BackendKind::Oracle,
        ] {
            let mut grouped_session = fl.session_with(&module, kind);
            let grouped = grouped_session.run_queries(&module, &queries);
            let mut scalar_session = fl.session_with(&module, kind);
            let scalar: Vec<_> = queries
                .iter()
                .map(|q| scalar_session.query(&module, q))
                .collect();
            assert_eq!(
                grouped,
                scalar,
                "planned vs scalar diverged on backend {}",
                grouped_session.backend_name()
            );
        }
    }
}

#[test]
fn subtree_skipping_ablation_changes_no_answer() {
    // The builder's ablation knob must be invisible in answers.
    let module = test_module(0xab1e, 500, 500);
    let queries = mixed_queries(&module);
    let on = Fastlive::builder().subtree_skipping(true).build().unwrap();
    let off = Fastlive::builder().subtree_skipping(false).build().unwrap();
    assert_eq!(
        run_all(&on, &module, BackendKind::Direct, &queries),
        run_all(&off, &module, BackendKind::Direct, &queries),
    );
}
