//! Printer/parser round-trips on generated functions, plus verifier
//! integration.

use fastlive::core::verify_strict_ssa;
use fastlive::ir::{interp, parse_function, verify_structure, Function};
use fastlive::workload::{generate_function, GenParams, SplitMix64};

/// Parsing renumbers entities densely in textual order, so the first
/// print∘parse normalizes; from then on it must be a fixed point, and
/// the program's behaviour must never change.
fn assert_round_trips(f: &Function, seed: u64) {
    let printed = f.to_string();
    let once = parse_function(&printed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
    verify_structure(&once).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    verify_strict_ssa(&once).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    let normalized = once.to_string();
    let twice =
        parse_function(&normalized).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{normalized}"));
    assert_eq!(
        twice.to_string(),
        normalized,
        "seed {seed}: not a fixed point"
    );

    // Semantics survive the round trip.
    let mut rng = SplitMix64::new(seed ^ 0x0f00d);
    for _ in 0..3 {
        let args: Vec<i64> = (0..f.params().len())
            .map(|_| rng.range(30) as i64 - 15)
            .collect();
        let a = interp::run(f, &args, 2_000_000).expect("original runs");
        let b = interp::run(&once, &args, 2_000_000).expect("reparsed runs");
        assert_eq!(a.returned, b.returned, "seed {seed} args {args:?}");
    }
}

#[test]
fn print_parse_normalizes_then_fixes() {
    for seed in 0..25u64 {
        let params = GenParams {
            target_blocks: 6 + (seed as usize % 6) * 6,
            ..GenParams::default()
        };
        let (_, f) = generate_function(&format!("rt{seed}"), params, seed);
        assert_round_trips(&f, seed);
    }
}

#[test]
fn destructed_functions_round_trip_too() {
    use fastlive::destruct::{destruct_ssa, CheckerEngine};
    for seed in 50..60u64 {
        let params = GenParams {
            target_blocks: 15,
            ..GenParams::default()
        };
        let (_, f) = generate_function(&format!("drt{seed}"), params, seed);
        let result = destruct_ssa(f, CheckerEngine::compute);
        // The post-copy-insertion function still parses and verifies.
        assert_round_trips(&result.func, seed);
    }
}

/// Round-trip regressions found (or guarded against) by the fuzz
/// harness's `roundtrip` arm: names needing escaping, terminator-only
/// blocks, zero- and multi-value returns, extreme literals, self/dup
/// edges, and layouts whose textual order differs from dominance order.
#[test]
fn roundtrip_regressions_pin_edge_shapes() {
    use fastlive::parse_module;

    let sources = [
        // Names that must be quoted/escaped by the printer.
        "function %\"\" { block0: return }",
        "function %\"with space\" { block0: return }",
        "function %\"quote\\\"backslash\\\\tab\\t\" { block0: return }",
        // Terminator-only blocks and empty/multi returns.
        "function %t { block0: brif v0, block1, block2
            block0(v0): jump block0 }",
        "function %r { block0(v0, v1): return v0, v1, v0 }",
        "function %v { block0: return }",
        // Extreme integer literals.
        "function %k { block0: v0 = iconst -9223372036854775808
            v1 = iconst 9223372036854775807
            return v0, v1 }",
        // Self edge with args and a duplicate-target brif.
        "function %s { block0(v0): brif v0, block0(v0), block0(v0) }",
        // Use textually before def (layout order != dominance order).
        "function %fwd { block0(v0): jump block2(v0)
            block1: return v1
            block2(v1): jump block1 }",
    ];
    for src in sources {
        // The middle case is deliberately malformed (block0 twice) —
        // skip sources that don't parse; everything that parses must
        // reach a printed fixed point.
        let Ok(m) = parse_module(src) else { continue };
        let printed = m.to_string();
        let again = parse_module(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(again.to_string(), printed, "not a fixed point:\n{src}");
    }
}

/// Arbitrary bytes must produce `Err`, never a panic or a hang — the
/// parser-totality satellite's seed cases (each found by the byte-fuzz
/// arm or by inspection of the old panicking/spinning paths).
#[test]
fn parser_is_total_on_adversarial_input() {
    let cases = [
        "function %f (",                    // used to spin at Eof
        "function %f (v0",                  // same loop, mid-list
        "function %\"unterminated",         // unterminated string
        "function %\"bad\\u{ffffffffff}\"", // over-long \u escape
        "function %f { block0: v0 = iconst 999999999999999999999\n return }",
        "function %f { block0: return } }", // trailing garbage
        "function %f { block0(block0): return }",
        "function %f { block0(v0)(v1): return }",
        "\u{0}\u{1}\u{2}",
        "%%%%",
    ];
    for src in cases {
        assert!(
            fastlive::parse_module(src).is_err(),
            "expected a parse error for {src:?}"
        );
    }
}

#[test]
fn parse_errors_carry_positions() {
    let cases = [
        ("function %f { block0: return v1 }", "undefined value"),
        ("function %f { block0: v1 = bogus v1 }", "unknown opcode"),
        ("function %f { block0: v1 = iconst 1 }", "terminator"),
        ("function %f { block0: jump block9 }", "never defined"),
    ];
    for (src, needle) in cases {
        let err = parse_function(src).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "error for {src:?} should mention {needle:?}, got: {err}"
        );
        assert!(err.line >= 1 && err.col >= 1);
    }
}
