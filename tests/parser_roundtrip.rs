//! Printer/parser round-trips on generated functions, plus verifier
//! integration.

use fastlive::core::verify_strict_ssa;
use fastlive::ir::{interp, parse_function, verify_structure, Function};
use fastlive::workload::{generate_function, GenParams, SplitMix64};

/// Parsing renumbers entities densely in textual order, so the first
/// print∘parse normalizes; from then on it must be a fixed point, and
/// the program's behaviour must never change.
fn assert_round_trips(f: &Function, seed: u64) {
    let printed = f.to_string();
    let once = parse_function(&printed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
    verify_structure(&once).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    verify_strict_ssa(&once).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    let normalized = once.to_string();
    let twice =
        parse_function(&normalized).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{normalized}"));
    assert_eq!(
        twice.to_string(),
        normalized,
        "seed {seed}: not a fixed point"
    );

    // Semantics survive the round trip.
    let mut rng = SplitMix64::new(seed ^ 0x0f00d);
    for _ in 0..3 {
        let args: Vec<i64> = (0..f.params().len())
            .map(|_| rng.range(30) as i64 - 15)
            .collect();
        let a = interp::run(f, &args, 2_000_000).expect("original runs");
        let b = interp::run(&once, &args, 2_000_000).expect("reparsed runs");
        assert_eq!(a.returned, b.returned, "seed {seed} args {args:?}");
    }
}

#[test]
fn print_parse_normalizes_then_fixes() {
    for seed in 0..25u64 {
        let params = GenParams {
            target_blocks: 6 + (seed as usize % 6) * 6,
            ..GenParams::default()
        };
        let (_, f) = generate_function(&format!("rt{seed}"), params, seed);
        assert_round_trips(&f, seed);
    }
}

#[test]
fn destructed_functions_round_trip_too() {
    use fastlive::destruct::{destruct_ssa, CheckerEngine};
    for seed in 50..60u64 {
        let params = GenParams {
            target_blocks: 15,
            ..GenParams::default()
        };
        let (_, f) = generate_function(&format!("drt{seed}"), params, seed);
        let result = destruct_ssa(f, CheckerEngine::compute);
        // The post-copy-insertion function still parses and verifies.
        assert_round_trips(&result.func, seed);
    }
}

#[test]
fn parse_errors_carry_positions() {
    let cases = [
        ("function %f { block0: return v1 }", "undefined value"),
        ("function %f { block0: v1 = bogus v1 }", "unknown opcode"),
        ("function %f { block0: v1 = iconst 1 }", "terminator"),
        ("function %f { block0: jump block9 }", "never defined"),
    ];
    for (src, needle) in cases {
        let err = parse_function(src).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "error for {src:?} should mention {needle:?}, got: {err}"
        );
        assert!(err.line >= 1 && err.col >= 1);
    }
}
