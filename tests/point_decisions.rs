//! Decision-equivalence of the point-precise refactor (ISSUE 3
//! acceptance): SSA destruction driven by the core fast point path
//! must make **byte-identical** copy-insertion decisions to the same
//! pass driven by the chain-walk shim it replaced — same output
//! program, same query stream, same counters — on reducible and
//! goto-injected irreducible workloads.

use fastlive::core::{FunctionLiveness, LivenessProvider, PointError};
use fastlive::destruct::{destruct_ssa, CheckerEngine, DestructResult};
use fastlive::ir::{Block, Function, ProgramPoint, Value};
use fastlive::workload::{generate_function, generate_pre, inject_gotos, GenParams};

/// The pre-refactor query procedure as an engine: block queries from
/// the checker, point queries through
/// [`FunctionLiveness::is_live_at_chain_walk`] — the per-use
/// `inst_position` walk that used to live in
/// `crates/destruct/src/interference.rs`.
struct ShimEngine(FunctionLiveness);

impl LivenessProvider for ShimEngine {
    fn live_in(&mut self, func: &Function, v: Value, b: Block) -> bool {
        self.0.is_live_in(func, v, b)
    }
    fn live_out(&mut self, func: &Function, v: Value, b: Block) -> bool {
        self.0.is_live_out(func, v, b)
    }
    fn live_at(&mut self, func: &Function, v: Value, p: ProgramPoint) -> Result<bool, PointError> {
        self.0.is_live_at_chain_walk(func, v, p)
    }
    fn name(&self) -> &'static str {
        "chain-walk shim (pre-refactor)"
    }
}

/// Returns the number of point queries the run issued (so callers can
/// assert the workloads exercised the path under test at all).
fn assert_identical_decisions(ssa: Function, label: &str) -> usize {
    let fast: DestructResult = destruct_ssa(ssa.clone(), CheckerEngine::compute);
    let shim: DestructResult = destruct_ssa(ssa, |f| ShimEngine(FunctionLiveness::compute(f)));
    // Byte-identical output program (copies in the same places, same
    // fresh values, same branch arguments).
    assert_eq!(
        fast.func.to_string(),
        shim.func.to_string(),
        "{label}: destructed programs diverged"
    );
    assert_eq!(
        format!("{:?}", fast.classes),
        format!("{:?}", shim.classes),
        "{label}: φ-congruence classes diverged"
    );
    // Identical query streams (same decisions in the same order) and
    // identical counters.
    assert_eq!(fast.stats.queries, shim.stats.queries, "{label}");
    assert_eq!(
        fast.stats.copies_inserted, shim.stats.copies_inserted,
        "{label}"
    );
    assert_eq!(
        fast.stats.interference_tests, shim.stats.interference_tests,
        "{label}"
    );
    assert_eq!(
        fast.stats.fallback_phis, shim.stats.fallback_phis,
        "{label}"
    );
    fast.stats
        .queries
        .iter()
        .filter(|q| q.point().is_some())
        .count()
}

#[test]
fn fast_path_and_shim_destruct_identically_on_reducible_workloads() {
    let mut point_queries = 0;
    for seed in 0..25u64 {
        let params = GenParams {
            target_blocks: 8 + (seed as usize % 5) * 8,
            num_params: 1 + (seed % 4) as u32,
            ..GenParams::default()
        };
        let (_, ssa) = generate_function(&format!("dec{seed}"), params, seed);
        point_queries += assert_identical_decisions(ssa, &format!("seed {seed}"));
    }
    // The workloads must actually exercise the path under test.
    assert!(
        point_queries > 100,
        "only {point_queries} point queries across all seeds"
    );
}

#[test]
fn fast_path_and_shim_destruct_identically_on_irreducible_workloads() {
    use fastlive::construct::construct_ssa;

    let mut exercised = 0;
    let mut point_queries = 0;
    for seed in 500..530u64 {
        let params = GenParams {
            target_blocks: 20,
            ..GenParams::default()
        };
        let mut pre = generate_pre(&format!("decirr{seed}"), params, seed);
        if inject_gotos(&mut pre, 3, seed) == 0 {
            continue;
        }
        let Ok(ssa) = construct_ssa(&pre) else {
            continue;
        };
        point_queries += assert_identical_decisions(ssa, &format!("irreducible seed {seed}"));
        exercised += 1;
    }
    assert!(
        exercised >= 10,
        "only {exercised} goto-injected programs survived"
    );
    assert!(
        point_queries > 0,
        "irreducible workloads issued no point queries"
    );
}
