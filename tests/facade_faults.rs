//! Graceful degradation through the facade: the three backends stay
//! byte-identical while the disk tier is under scripted fault
//! injection, a panicking precomputation surfaces as a per-query
//! [`QueryError::AnalysisFailed`] (never a crash, never contagion),
//! and [`Fastlive::health`] reflects the breaker's trip → restore
//! cycle.

use std::sync::Arc;
use std::time::Duration;

use fastlive::workload::{generate_module, ModuleParams};
use fastlive::{
    AnalysisError, BackendKind, BreakerConfig, BreakerState, Fastlive, Fault, FaultRule, FaultVfs,
    Module, OpKind, Query, QueryError,
};

fn test_module(seed: u64) -> Module {
    generate_module(
        "ff",
        ModuleParams {
            functions: 4,
            min_blocks: 4,
            max_blocks: 14,
            irreducible_per_mille: 200,
            deep_live_per_mille: 300,
        },
        seed,
    )
}

fn block_queries(module: &Module) -> Vec<Query> {
    let mut queries = Vec::new();
    for (id, func) in module.iter() {
        for v in func.values() {
            for b in func.blocks() {
                queries.push(Query::live_in(id, v, b));
                queries.push(Query::live_out(id, v, b));
            }
        }
        queries.push(Query::live_sets(id));
    }
    queries
}

/// Direct / Session / Oracle answer byte-identically while the session
/// backend's disk tier is being actively sabotaged — fault injection
/// degrades cost, never answers.
#[test]
fn backends_stay_byte_identical_under_disk_faults() {
    let module = test_module(77);
    let queries = block_queries(&module);
    let dir = std::env::temp_dir().join(format!("fastlive-ff-ident-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A thoroughly sick disk: flaky reads, failing writes, slow stats.
    let vfs = Arc::new(FaultVfs::new(vec![
        FaultRule::window(OpKind::Read, 1, 4, Fault::eio()),
        FaultRule::window(OpKind::Write, 0, 3, Fault::enospc()),
        FaultRule::window(OpKind::Write, 5, 2, Fault::TornWrite(9)),
        FaultRule::every(OpKind::Metadata, Fault::Delay(Duration::from_micros(80))),
    ]));
    let faulted = Fastlive::builder()
        .threads(2)
        .persist_dir(dir.clone())
        .vfs(vfs)
        .disk_breaker(BreakerConfig {
            trip_threshold: 4,
            initial_backoff: Duration::from_millis(10),
            ..BreakerConfig::default()
        })
        .build()
        .expect("valid config");

    let mut session = faulted.session_with(&module, BackendKind::Session);
    let mut direct = faulted.session_with(&module, BackendKind::Direct);
    let mut oracle = faulted.session_with(&module, BackendKind::Oracle);

    let answers_s = session.run_queries(&module, &queries);
    let answers_d = direct.run_queries(&module, &queries);
    let answers_o = oracle.run_queries(&module, &queries);
    for ((s, d), (o, q)) in answers_s
        .iter()
        .zip(&answers_d)
        .zip(answers_o.iter().zip(&queries))
    {
        assert_eq!(s, d, "session vs direct on {q:?}");
        assert_eq!(s, o, "session vs oracle on {q:?}");
        assert!(s.is_ok(), "disk faults must never fail a query: {q:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panicking precomputation fails only its own function's queries —
/// with `AnalysisFailed` carrying the typed error — and self-heals
/// once the fault clears.
#[test]
fn panicking_function_degrades_to_analysis_failed() {
    let module = test_module(78);
    let fl = Fastlive::builder().threads(2).build().expect("valid");
    let poisoned = fastlive::CfgShape::of(module.func(0));
    let target = poisoned.clone();
    fl.engine().set_compute_fault(Some(Box::new(move |shape| {
        if *shape == target {
            panic!("facade-injected panic");
        }
    })));

    let mut session = fl.session(&module);
    let results = session.run_queries(&module, &block_queries(&module));
    let mut failed = 0usize;
    let mut answered = 0usize;
    for r in &results {
        match r {
            Ok(_) => answered += 1,
            Err(QueryError::AnalysisFailed(AnalysisError::ComputePanicked { message })) => {
                assert!(message.contains("facade-injected panic"), "{message}");
                failed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(failed > 0, "the poisoned function's queries must fail");
    assert!(answered > 0, "other functions must keep answering");

    // Same batch against the Direct backend: only the poisoned
    // function differs (it answers there); every other slot matches.
    let mut direct = fl.session_with(&module, BackendKind::Direct);
    let direct_results = direct.run_queries(&module, &block_queries(&module));
    for (s, d) in results.iter().zip(&direct_results) {
        if s.is_ok() {
            assert_eq!(s, d);
        }
    }

    // Fault cleared: the session self-heals on the next query — no
    // rebuild needed.
    fl.engine().set_compute_fault(None);
    let healed = session.run_queries(&module, &block_queries(&module));
    assert!(healed.iter().all(|r| r.is_ok()), "must self-heal");
    assert_eq!(healed, direct_results, "healed answers are exact");
}

/// `Fastlive::health()` tracks the breaker through sick and recovered
/// phases, and reports quiescent health on a disk-less stack.
#[test]
fn health_reflects_trip_and_restore() {
    let module = test_module(79);
    let dir = std::env::temp_dir().join(format!("fastlive-ff-health-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let vfs = Arc::new(FaultVfs::new(vec![
        FaultRule::every(OpKind::Read, Fault::eio()),
        FaultRule::every(OpKind::Metadata, Fault::eio()),
        FaultRule::every(OpKind::Write, Fault::eio()),
    ]));
    let fl = Fastlive::builder()
        .threads(1)
        .cache_capacity(0) // every probe reaches the disk tier
        .stripes(1)
        .persist_dir(dir.clone())
        .vfs(vfs.clone())
        .disk_breaker(BreakerConfig {
            trip_threshold: 2,
            initial_backoff: Duration::from_millis(30),
            max_backoff: Duration::from_millis(120),
            ..BreakerConfig::default()
        })
        .build()
        .expect("valid config");

    let baseline = fl.health();
    assert!(baseline.persist_configured);
    assert_eq!(baseline.disk_state, BreakerState::Closed);
    assert_eq!(baseline.disk_trips, 0);

    let _ = fl.session(&module); // analyze under a fully sick disk
    let sick = fl.health();
    assert_eq!(sick.disk_state, BreakerState::Open, "{sick:?}");
    assert!(sick.disk_trips >= 1);
    assert!(sick.cache.disk_errors >= 2);

    vfs.set_rules(vec![]);
    std::thread::sleep(Duration::from_millis(150));
    let _ = fl.session(&module); // half-open probe succeeds, tier restores
    let recovered = fl.health();
    assert_eq!(recovered.disk_state, BreakerState::Closed, "{recovered:?}");
    assert!(recovered.disk_restores >= 1, "{recovered:?}");
    assert_eq!(recovered.consecutive_disk_failures, 0);

    // A disk-less facade reports unconfigured persist and never trips.
    let memory_only = Fastlive::with_defaults();
    let _ = memory_only.session(&module);
    let h = memory_only.health();
    assert!(!h.persist_configured);
    assert_eq!(h.disk_state, BreakerState::Closed);
    assert_eq!(h.disk_trips + h.disk_restores + h.disk_probes_skipped, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
