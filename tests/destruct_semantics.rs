//! Semantic validation of the whole pipeline on generated workloads:
//! pre-IR → SSA construction → SSA destruction → out-of-SSA program,
//! with the interpreter as the judge at every step, for every liveness
//! engine.

use fastlive::construct::run_pre;
use fastlive::dataflow::{IterativeLiveness, LaoLiveness, VarUniverse};
use fastlive::destruct::{destruct_ssa, BitvecEngine, CheckerEngine, NativeEngine};
use fastlive::ir::interp;
use fastlive::workload::{generate_function, GenParams, SplitMix64};

#[test]
fn construction_and_destruction_preserve_semantics() {
    for seed in 0..30u64 {
        let params = GenParams {
            target_blocks: 8 + (seed as usize % 5) * 8,
            num_params: 1 + (seed % 4) as u32,
            ..GenParams::default()
        };
        let (pre, ssa) = generate_function(&format!("sem{seed}"), params, seed);
        let result = destruct_ssa(ssa.clone(), CheckerEngine::compute);

        let mut rng = SplitMix64::new(seed.wrapping_mul(0x1234_5678_9abc_def1));
        for _ in 0..5 {
            let args: Vec<i64> = (0..pre.num_params())
                .map(|_| rng.range(60) as i64 - 30)
                .collect();
            let original = run_pre(&pre, &args, 3_000_000)
                .unwrap_or_else(|e| panic!("seed {seed} args {args:?}: {e}"));
            let in_ssa = interp::run(&ssa, &args, 3_000_000)
                .unwrap_or_else(|e| panic!("seed {seed} args {args:?}: {e}"));
            let destructed = run_pre(&result.pre, &args, 3_000_000)
                .unwrap_or_else(|e| panic!("seed {seed} args {args:?}: {e}"));
            assert_eq!(
                in_ssa.returned, original.returned,
                "SSA vs pre, seed {seed} {args:?}"
            );
            assert_eq!(
                destructed.returned, original.returned,
                "out-of-SSA vs pre, seed {seed} {args:?}\n{}",
                result.func
            );
        }
    }
}

#[test]
fn every_engine_destructs_identically() {
    for seed in 100..115u64 {
        let params = GenParams {
            target_blocks: 20,
            ..GenParams::default()
        };
        let (_, ssa) = generate_function(&format!("eng{seed}"), params, seed);

        let a = destruct_ssa(ssa.clone(), CheckerEngine::compute);
        let b = destruct_ssa(ssa.clone(), |f| {
            NativeEngine::new(LaoLiveness::compute(f, &VarUniverse::phi_related(f)), f)
        });
        let c = destruct_ssa(ssa.clone(), |f| {
            BitvecEngine::new(IterativeLiveness::compute(f, &VarUniverse::all(f)), f)
        });

        // Same decisions: same query streams, same copies, same output.
        assert_eq!(
            a.stats.queries, b.stats.queries,
            "checker vs native, seed {seed}"
        );
        assert_eq!(
            a.stats.queries, c.stats.queries,
            "checker vs bitvec, seed {seed}"
        );
        assert_eq!(
            a.stats.copies_inserted, b.stats.copies_inserted,
            "seed {seed}"
        );
        assert_eq!(
            a.stats.copies_inserted, c.stats.copies_inserted,
            "seed {seed}"
        );
        assert_eq!(a.func.to_string(), b.func.to_string(), "seed {seed}");
        assert_eq!(a.func.to_string(), c.func.to_string(), "seed {seed}");
    }
}

#[test]
fn congruence_classes_are_interference_free() {
    // The invariant the merge step must maintain: within a class, no
    // two values are simultaneously live (checked against the exact
    // checker on the final function).
    use fastlive::cfg::{DfsTree, DomTree};
    use fastlive::destruct::values_interfere;

    for seed in 200..212u64 {
        let params = GenParams {
            target_blocks: 16,
            ..GenParams::default()
        };
        let (_, ssa) = generate_function(&format!("cls{seed}"), params, seed);
        let result = destruct_ssa(ssa, CheckerEngine::compute);
        let func = &result.func;
        let dfs = DfsTree::compute(func);
        let dom = DomTree::compute(func, &dfs);
        let mut engine = CheckerEngine::compute(func);

        let roots: Vec<_> = result.classes.roots(2).collect();
        for root in roots {
            let members = result.classes.members(root).to_vec();
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    assert!(
                        !values_interfere(&mut engine, func, &dom, members[i], members[j])
                            .expect("destructed function has no detached definitions"),
                        "seed {seed}: {} and {} share a class but interfere\n{func}",
                        members[i],
                        members[j]
                    );
                }
            }
        }
    }
}

#[test]
fn destruction_on_irreducible_inputs() {
    // Goto-injected (irreducible) programs must survive the whole
    // pipeline too.
    use fastlive::construct::construct_ssa;
    use fastlive::workload::{generate_pre, inject_gotos};

    let mut exercised = 0;
    for seed in 300..330u64 {
        let params = GenParams {
            target_blocks: 22,
            ..GenParams::default()
        };
        let mut pre = generate_pre(&format!("irr{seed}"), params, seed);
        if inject_gotos(&mut pre, 3, seed) == 0 {
            continue;
        }
        let Ok(ssa) = construct_ssa(&pre) else {
            continue;
        };
        let result = destruct_ssa(ssa.clone(), CheckerEngine::compute);
        let args = vec![5i64; pre.num_params() as usize];
        let want = interp::run(&ssa, &args, 3_000_000).unwrap();
        let got = run_pre(&result.pre, &args, 3_000_000).unwrap();
        assert_eq!(got.returned, want.returned, "seed {seed}");
        exercised += 1;
    }
    assert!(
        exercised >= 10,
        "only {exercised} goto-injected programs survived"
    );
}
