//! Structural claims of the paper, tested as code: Theorem 2 (single
//! test on reducible CFGs), the loop-forest characterisation of `T_q`,
//! the variable-independence of the precomputation, and the Lemma 3
//! dominance order.

use fastlive::cfg::{DfsTree, DomTree, LoopForest, Reducibility};
use fastlive::core::{FunctionLiveness, LivenessChecker};
use fastlive::dataflow::oracle;
use fastlive::ir::{InstData, UnaryOp};
use fastlive::workload::{generate_function, GenParams};

fn reducible_functions() -> Vec<fastlive::ir::Function> {
    (0..20u64)
        .filter_map(|seed| {
            let params = GenParams {
                target_blocks: 24,
                ..GenParams::default()
            };
            let (_, f) = generate_function(&format!("thm{seed}"), params, seed);
            let dfs = DfsTree::compute(&f);
            let dom = DomTree::compute(&f, &dfs);
            Reducibility::compute(&dfs, &dom)
                .is_reducible()
                .then_some(f)
        })
        .collect()
}

#[test]
fn theorem2_single_candidate_on_reducible_cfgs() {
    // "If the CFG is reducible ... the while body is executed at most
    // once": the candidate iterator yields ≤ 1 element for every query.
    let funcs = reducible_functions();
    assert!(funcs.len() >= 15);
    for f in &funcs {
        let live = LivenessChecker::compute(f);
        let n = f.num_blocks() as u32;
        for def in 0..n {
            for q in 0..n {
                let count = live.candidates(def, q).count();
                assert!(
                    count <= 1,
                    "{}: {count} candidates for (def={def}, q={q})",
                    f.name
                );
            }
        }
    }
}

#[test]
fn lemma3_dominance_totally_orders_t_sets_on_reducible_cfgs() {
    for f in &reducible_functions() {
        let live = LivenessChecker::compute(f);
        let dfs = DfsTree::compute(f);
        let dom = DomTree::compute(f, &dfs);
        for q in 0..f.num_blocks() as u32 {
            let t = live.t_set(q);
            for &a in &t {
                for &b in &t {
                    assert!(
                        dom.dominates(a, b) || dom.dominates(b, a),
                        "{}: T_{q} not a dominance chain: {a} vs {b} in {t:?}",
                        f.name
                    );
                }
            }
        }
    }
}

#[test]
fn t_sets_are_loop_header_chains_on_reducible_cfgs() {
    // The bridge to the §8 outlook: on a reducible CFG the stored T_q
    // is exactly {q} plus the headers of the loops containing q.
    for f in &reducible_functions() {
        let live = LivenessChecker::compute(f);
        let dfs = DfsTree::compute(f);
        let forest = LoopForest::compute(f, &dfs);
        for q in 0..f.num_blocks() as u32 {
            let mut expect: Vec<u32> = forest
                .containing_loops(q)
                .map(|l| forest.loop_ref(l).header)
                .filter(|&h| h != q)
                .collect();
            expect.push(q);
            expect.sort_unstable();
            let mut got = live.t_set(q);
            got.sort_unstable();
            assert_eq!(got, expect, "{}: T_{q}", f.name);
        }
    }
}

#[test]
fn precomputation_is_variable_independent() {
    // §1, feature 2: "precomputed information remains valid upon adding
    // or removing variables or their uses." Edit a function heavily and
    // compare every answer of the *old* checker against the oracle on
    // the *new* function.
    for seed in 0..10u64 {
        let params = GenParams {
            target_blocks: 18,
            ..GenParams::default()
        };
        let (_, mut f) = generate_function(&format!("edit{seed}"), params, seed);
        let live = FunctionLiveness::compute(&f);

        // Edits: sink fresh uses of random values into random blocks and
        // add brand-new constants (no CFG changes).
        let values: Vec<_> = f.values().collect();
        let blocks: Vec<_> = f.blocks().collect();
        for (i, &v) in values.iter().enumerate().take(12) {
            let b = blocks[(i * 7 + seed as usize) % blocks.len()];
            // Insert `ineg v` at the top of b when that is legal
            // (definition dominates b); otherwise skip.
            let dfs = DfsTree::compute(&f);
            let dom = DomTree::compute(&f, &dfs);
            let db = f.def_block(v);
            if db == b || !dom.strictly_dominates(db.as_u32(), b.as_u32()) {
                continue;
            }
            f.insert_inst(
                b,
                0,
                InstData::Unary {
                    op: UnaryOp::Ineg,
                    arg: v,
                },
            );
        }
        let k = f.insert_inst(f.entry_block(), 0, InstData::IntConst { imm: 9 });
        let kv = f.inst_result(k).unwrap();
        let last = *blocks.last().unwrap();
        if f.block_insts(last).len() > 1 {
            f.insert_inst(
                last,
                0,
                InstData::Unary {
                    op: UnaryOp::Bnot,
                    arg: kv,
                },
            );
        }

        // The checker computed *before* the edits answers exactly.
        assert!(live.is_current_for(&f), "no CFG change happened");
        for v in f.values() {
            for b in f.blocks() {
                assert_eq!(
                    live.is_live_in(&f, v, b),
                    oracle::live_in_value(&f, v, b),
                    "stale? live-in {v}@{b} seed {seed}"
                );
                assert_eq!(
                    live.is_live_out(&f, v, b),
                    oracle::live_out_value(&f, v, b),
                    "stale? live-out {v}@{b} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn checker_survives_dead_phi_elimination() {
    // remove_dead_block_params deletes φs and branch arguments but
    // never touches the CFG: a checker computed before the cleanup
    // stays exact afterwards — precisely the class of transformation
    // §1 says survives.
    use fastlive::ir::{parse_function, remove_dead_block_params};
    let mut f = parse_function(
        "function %deadphi { block0(v0):
            brif v0, block1(v0, v0), block2
        block1(v1, v2):
            v3 = ineg v1
            jump block3(v3, v2)
        block2:
            v4 = iconst 7
            jump block3(v4, v4)
        block3(v5, v6):
            v7 = iadd v5, v0
            return v7 }",
    )
    .unwrap();
    let live = FunctionLiveness::compute(&f);
    // v6 is dead; removing it kills v2's last use, which cascades.
    let removed = remove_dead_block_params(&mut f);
    assert_eq!(removed, 2, "v6 then v2 must cascade away");
    assert!(live.is_current_for(&f), "CFG unchanged");
    for v in f.values() {
        for b in f.blocks() {
            assert_eq!(
                live.is_live_in(&f, v, b),
                oracle::live_in_value(&f, v, b),
                "live-in {v}@{b} after cleanup"
            );
            assert_eq!(
                live.is_live_out(&f, v, b),
                oracle::live_out_value(&f, v, b),
                "live-out {v}@{b} after cleanup"
            );
        }
    }
    // And semantics are untouched.
    use fastlive::ir::interp;
    assert_eq!(interp::run(&f, &[5], 100).unwrap().returned, vec![0]);
    assert_eq!(interp::run(&f, &[0], 100).unwrap().returned, vec![7]);
}

#[test]
fn irreducible_ratio_matches_the_papers_rarity() {
    // §6.1: irreducibility is rare. Our default suites contain a small
    // share of goto-injected procedures; verify it stays small but
    // non-zero at a scale large enough to see it.
    use fastlive::workload::{generate_suite, FunctionStats, SPEC2000_INT};
    let mut total = 0usize;
    let mut irreducible = 0usize;
    for profile in &SPEC2000_INT[..4] {
        let suite = generate_suite(profile, 40, 99);
        for f in &suite.functions {
            total += 1;
            irreducible += (!FunctionStats::measure(f).is_reducible()) as usize;
        }
    }
    assert!(total > 500);
    assert!(
        irreducible * 50 < total,
        "irreducibility must stay rare: {irreducible}/{total}"
    );
}
