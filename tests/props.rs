//! Property-based tests (proptest): randomized graphs and set
//! operations shrunk to minimal counterexamples.

use std::collections::BTreeSet;

use fastlive::bitset::{DenseBitSet, SortedSet, SparseSet};
use fastlive::cfg::{DfsTree, DomTree, EdgeClass};
use fastlive::core::{LivenessChecker, SortedLivenessChecker};
use fastlive::dataflow::oracle;
use fastlive::graph::{Cfg as _, DiGraph};
use proptest::prelude::*;

/// Strategy: a connected digraph of `n ≤ 12` nodes — a random tree
/// backbone (keeps all nodes reachable) plus arbitrary extra edges.
fn digraphs() -> impl Strategy<Value = DiGraph> {
    (2usize..12).prop_flat_map(|n| {
        let backbone = proptest::collection::vec(0u32..(n as u32), n - 1);
        let extras = proptest::collection::vec((0u32..(n as u32), 0u32..(n as u32)), 0..2 * n);
        (Just(n), backbone, extras).prop_map(|(n, parents, extras)| {
            let mut g = DiGraph::new(n, 0);
            for (i, &p) in parents.iter().enumerate() {
                let v = (i + 1) as u32;
                g.add_edge(p % v, v); // parent index below v: stays a DAG backbone
            }
            for (u, v) in extras {
                g.add_edge(u, v);
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The checker agrees with the Definition-2 oracle on every query
    /// whose (def, use) pair satisfies strict SSA (def dominates use).
    #[test]
    fn checker_matches_oracle(g in digraphs()) {
        let dfs = DfsTree::compute(&g);
        let dom = DomTree::compute(&g, &dfs);
        let live = LivenessChecker::compute(&g);
        let n = g.num_nodes() as u32;
        for def in 0..n {
            for u in 0..n {
                if !dfs.is_reachable(def) || !dfs.is_reachable(u) || !dom.dominates(def, u) {
                    continue;
                }
                for q in 0..n {
                    if !dfs.is_reachable(q) {
                        continue;
                    }
                    let uses = [u];
                    prop_assert_eq!(
                        live.is_live_in(def, &uses, q),
                        oracle::live_in(&g, def, &uses, q),
                        "live-in def={} use={} q={}", def, u, q
                    );
                    prop_assert_eq!(
                        live.is_live_out(def, &uses, q),
                        oracle::live_out(&g, def, &uses, q),
                        "live-out def={} use={} q={}", def, u, q
                    );
                }
            }
        }
    }

    /// Bitset and sorted-array engines are interchangeable.
    #[test]
    fn sorted_engine_matches_bitset_engine(g in digraphs()) {
        let bitset = LivenessChecker::compute(&g);
        let sorted = SortedLivenessChecker::compute(&g);
        let n = g.num_nodes() as u32;
        for def in 0..n {
            for u in 0..n {
                for q in 0..n {
                    let uses = [u];
                    prop_assert_eq!(
                        bitset.is_live_in(def, &uses, q),
                        sorted.is_live_in(def, &uses, q)
                    );
                    prop_assert_eq!(
                        bitset.is_live_out(def, &uses, q),
                        sorted.is_live_out(def, &uses, q)
                    );
                }
            }
        }
    }

    /// DFS invariants: postorder is a reverse topological order of the
    /// reduced graph; back edges target ancestors.
    #[test]
    fn dfs_invariants(g in digraphs()) {
        let dfs = DfsTree::compute(&g);
        for (u, v, class) in dfs.classified_edges() {
            match class {
                EdgeClass::Back => prop_assert!(dfs.is_ancestor(v, u)),
                EdgeClass::Unreachable => prop_assert!(!dfs.is_reachable(u)),
                _ => prop_assert!(dfs.post(u) > dfs.post(v), "({}, {}) {}", u, v, class),
            }
        }
    }

    /// Dominance facts: idom strictly dominates; num/maxnum intervals
    /// characterize dominance exactly.
    #[test]
    fn domtree_invariants(g in digraphs()) {
        let dfs = DfsTree::compute(&g);
        let dom = DomTree::compute(&g, &dfs);
        let n = g.num_nodes() as u32;
        for v in 0..n {
            if !dfs.is_reachable(v) {
                continue;
            }
            if let Some(i) = dom.idom(v) {
                prop_assert!(dom.strictly_dominates(i, v));
            }
            for w in 0..n {
                if !dfs.is_reachable(w) {
                    continue;
                }
                let interval = dom.num(w) >= dom.num(v) && dom.num(w) <= dom.maxnum(v);
                prop_assert_eq!(interval, dom.dominates(v, w));
            }
        }
    }

    /// DenseBitSet behaves like a model BTreeSet.
    #[test]
    fn dense_bitset_is_a_set(
        ops in proptest::collection::vec((0u32..192, any::<bool>()), 0..120)
    ) {
        let mut real = DenseBitSet::new(192);
        let mut model = BTreeSet::new();
        for (x, insert) in ops {
            if insert {
                prop_assert_eq!(real.insert(x), model.insert(x));
            } else {
                prop_assert_eq!(real.remove(x), model.remove(&x));
            }
        }
        prop_assert_eq!(real.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(real.len(), model.len());
        // next_set_bit agrees with range scans of the model.
        for from in 0..192u32 {
            let expect = model.range(from..).next().copied();
            prop_assert_eq!(real.next_set_bit(from), expect);
        }
    }

    /// SortedSet and SparseSet agree with the same model.
    #[test]
    fn sorted_and_sparse_sets_agree(
        elems in proptest::collection::vec(0u32..128, 0..80)
    ) {
        let mut sparse = SparseSet::new(128);
        let sorted: SortedSet = elems.iter().copied().collect();
        let model: BTreeSet<u32> = elems.iter().copied().collect();
        for &e in &elems {
            sparse.insert(e);
        }
        for x in 0..128u32 {
            prop_assert_eq!(sorted.contains(x), model.contains(&x));
            prop_assert_eq!(sparse.contains(x), model.contains(&x));
        }
        prop_assert_eq!(sorted.len(), model.len());
        prop_assert_eq!(sparse.len(), model.len());
    }

    /// Set algebra on DenseBitSet matches the model algebra.
    #[test]
    fn bitset_algebra(
        a in proptest::collection::btree_set(0u32..100, 0..40),
        b in proptest::collection::btree_set(0u32..100, 0..40)
    ) {
        let da = DenseBitSet::from_elems(100, a.iter().copied());
        let db = DenseBitSet::from_elems(100, b.iter().copied());
        let mut union = da.clone();
        union.union_with(&db);
        let mut inter = da.clone();
        inter.intersect_with(&db);
        let mut diff = da.clone();
        diff.difference_with(&db);
        prop_assert_eq!(union.iter().collect::<Vec<_>>(), a.union(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(inter.iter().collect::<Vec<_>>(), a.intersection(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(diff.iter().collect::<Vec<_>>(), a.difference(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(da.intersects(&db), !a.is_disjoint(&b));
        prop_assert_eq!(da.is_subset_of(&db), a.is_subset(&b));
    }
}
