//! Facade-level telemetry properties (PR 7): instrumentation is an
//! **observer**. Enabling it must leave every backend's answers
//! byte-identical to an uninstrumented run (the answers-never-depend-
//! on-telemetry invariant from ROADMAP.md), the snapshot's counters
//! must match the queries actually issued, and the renderings
//! (`to_json`, `to_prometheus`, `Display`) must stay well-formed.

use fastlive::workload::{generate_module, ModuleParams};
use fastlive::{
    BackendKind, EventKind, Fastlive, Module, PointRef, Query, QueryError, Response,
    TelemetrySnapshot,
};

fn test_module(seed: u64) -> Module {
    generate_module(
        "obs",
        ModuleParams {
            functions: 3,
            min_blocks: 4,
            max_blocks: 14,
            irreducible_per_mille: 250,
            deep_live_per_mille: 400,
        },
        seed,
    )
}

/// One query of every kind against the module's first function.
fn one_of_each(module: &Module) -> Vec<Query> {
    let (id, func) = module.iter().next().expect("nonempty module");
    let values: Vec<_> = func.values().collect();
    let blocks: Vec<_> = func.blocks().collect();
    vec![
        Query::live_in(id, values[0], blocks[0]),
        Query::live_out(id, values[0], blocks[0]),
        Query::live_at(id, values[0], PointRef::entry(blocks[0])),
        Query::live_sets(id),
        Query::interfere(id, values[0], *values.last().unwrap()),
    ]
}

/// A denser mixed batch across all functions (enough block probes per
/// function that the planner takes the grouped path).
fn dense_batch(module: &Module) -> Vec<Query> {
    let mut queries = Vec::new();
    for (id, func) in module.iter() {
        for v in func.values() {
            for b in func.blocks() {
                queries.push(Query::live_in(id, v, b));
                queries.push(Query::live_out(id, v, b));
            }
        }
        queries.push(Query::live_sets(id));
    }
    queries
}

fn answers(
    fl: &Fastlive,
    module: &Module,
    kind: BackendKind,
    queries: &[Query],
    scalar: bool,
) -> Vec<Result<Response, QueryError>> {
    let mut session = fl.session_with(module, kind);
    if scalar {
        queries.iter().map(|q| session.query(module, q)).collect()
    } else {
        session.run_queries(module, queries)
    }
}

/// The acceptance differential: enabled-vs-noop telemetry produces
/// byte-identical responses on all three backends, for both scalar
/// dispatch and planned batches.
#[test]
fn enabled_telemetry_never_changes_answers() {
    let plain = Fastlive::builder().threads(1).build().unwrap();
    let metered = Fastlive::builder()
        .threads(1)
        .telemetry(true)
        .build()
        .unwrap();
    for seed in [0xa1u64, 0xb2, 0xc3] {
        let module = test_module(seed);
        let queries = dense_batch(&module);
        for kind in [
            BackendKind::Direct,
            BackendKind::Session,
            BackendKind::Oracle,
        ] {
            for scalar in [true, false] {
                assert_eq!(
                    answers(&plain, &module, kind, &queries, scalar),
                    answers(&metered, &module, kind, &queries, scalar),
                    "seed {seed:#x} {kind:?} scalar={scalar}: telemetry is an observer"
                );
            }
        }
    }
    assert!(metered.telemetry().total_queries() > 0, "and it did record");
}

/// The snapshot counts exactly what was issued: per-kind histogram
/// counts equal the per-kind query counts, the per-backend counters
/// split the same total, and planner counters match the batches run.
#[test]
fn snapshot_counters_match_issued_queries() {
    let fl = Fastlive::builder()
        .threads(1)
        .telemetry(true)
        .build()
        .unwrap();
    let module = test_module(0x77);
    let per_class = one_of_each(&module);

    // 3 rounds of scalar singles on session, 2 on direct, 1 on oracle.
    for (kind, rounds) in [
        (BackendKind::Session, 3usize),
        (BackendKind::Direct, 2),
        (BackendKind::Oracle, 1),
    ] {
        let mut session = fl.session_with(&module, kind);
        for _ in 0..rounds {
            for q in &per_class {
                session.query(&module, q).unwrap();
            }
        }
    }
    let snap = fl.telemetry();
    assert_eq!(snap.total_queries(), 6 * 5, "6 rounds × 5 kinds");
    for kind in ["live_in", "live_out", "live_at", "live_sets", "interfere"] {
        assert_eq!(snap.query_kind(kind).unwrap().count, 6, "{kind}: {snap}");
    }
    let backend_count = |snap: &TelemetrySnapshot, name: &str| {
        snap.backend_queries
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.count)
            .unwrap_or(0)
    };
    assert_eq!(backend_count(&snap, "session"), 15);
    assert_eq!(backend_count(&snap, "direct"), 10);
    assert_eq!(backend_count(&snap, "oracle"), 5);
    assert_eq!(backend_count(&snap, "other"), 0);

    // Planned batches: the dense batch takes the grouped path for
    // every checker-backed function group; the oracle's groups are
    // always scalar.
    let batch = dense_batch(&module);
    fl.session_with(&module, BackendKind::Session)
        .run_queries(&module, &batch);
    fl.session_with(&module, BackendKind::Oracle)
        .run_queries(&module, &batch);
    let snap = fl.telemetry();
    assert_eq!(snap.plan.batches, 2);
    assert_eq!(snap.plan.queries, 2 * batch.len() as u64);
    assert_eq!(snap.plan.grouped_groups, module.len() as u64, "{snap}");
    assert_eq!(snap.plan.scalar_groups, module.len() as u64, "{snap}");
    assert_eq!(snap.plan.batch_size.count, 2);
    assert_eq!(snap.plan.batch_size.max, batch.len() as u64);

    // The engine tier saw the session traffic; a no-op facade would
    // have no snapshot at all (all-zero default).
    assert!(snap.total_tier_records() > 0);
    let plain = Fastlive::builder().threads(1).build().unwrap();
    plain
        .session(&module)
        .run_queries(&module, &one_of_each(&module));
    assert_eq!(plain.telemetry(), TelemetrySnapshot::default());
}

/// The enriched health report through the facade: per-stripe stats sum
/// to the aggregate, the last GC sweep is carried, and session
/// revalidation events reach the report's event tail.
#[test]
fn health_report_is_enriched_through_the_facade() {
    let dir = std::env::temp_dir().join(format!("fastlive-obs-facade-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fl = Fastlive::builder()
        .threads(1)
        .telemetry(true)
        .persist_dir(&dir)
        .build()
        .unwrap();
    let module = test_module(0x99);
    let mut session = fl.session(&module);
    session.run_queries(&module, &dense_batch(&module));

    // Edit a function's CFG and re-query: the session backend
    // revalidates and the event lands in health(). Splitting the
    // critical edge block0→block2 guarantees a shape change.
    let mut small = fastlive::parse_module(
        "function %r { block0(v0): brif v0, block1, block2
         block1: jump block2
         block2: return v0 }",
    )
    .unwrap();
    let id = small.by_name("r").unwrap();
    let mut s2 = fl.session(&small);
    s2.query(&small, &Query::live_sets(id)).unwrap();
    let created = fastlive::ir::split_critical_edges(small.func_mut(id));
    assert!(!created.is_empty(), "the edit must change the CFG");
    s2.query(&small, &Query::live_sets(id)).unwrap();

    let health = fl.health();
    let summed = health
        .stripes
        .iter()
        .fold(fastlive::CacheStats::default(), |acc, s| acc.add(s));
    assert_eq!(summed, health.cache, "stripes sum to the aggregate");
    assert!(
        health
            .recent_events
            .iter()
            .any(|e| e.kind == EventKind::SessionRevalidated),
        "revalidation reached the event tail: {health}"
    );

    let gc = fl.gc_persist(Some(fastlive::GcPolicy {
        max_entries: 0,
        max_age: None,
    }));
    let health = fl.health();
    assert_eq!(health.last_gc, gc, "the sweep's stats are carried");
    std::fs::remove_dir_all(&dir).ok();
}

/// Rendering sanity: JSON stays balanced and quoted, the Prometheus
/// exposition carries the metric families, Display round-trips the
/// headline numbers, and `HealthReport::to_json` nests the snapshot's
/// building blocks.
#[test]
fn renderings_are_well_formed() {
    let fl = Fastlive::builder()
        .threads(1)
        .telemetry(true)
        .build()
        .unwrap();
    let module = test_module(0x42);
    fl.session(&module)
        .run_queries(&module, &dense_batch(&module));
    let snap = fl.telemetry();

    let json = snap.to_json();
    let mut depth = 0i64;
    let mut in_str = false;
    let mut prev = '\0';
    for c in json.chars() {
        match c {
            '"' if prev != '\\' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "balanced at every prefix");
        prev = if prev == '\\' && c == '\\' { '\0' } else { c };
    }
    assert_eq!(depth, 0, "balanced JSON");
    assert!(!in_str, "closed strings");
    assert!(json.contains("\"queries\"") && json.contains("\"tiers\""));

    let prom = snap.to_prometheus();
    for family in [
        "fastlive_query_latency_ns",
        "fastlive_tier_latency_ns",
        "fastlive_plan_queries_total",
    ] {
        assert!(prom.contains(family), "{family} missing:\n{prom}");
    }

    let display = format!("{snap}");
    assert!(display.contains("queries"), "{display}");

    let health_json = fl.health().to_json();
    assert!(health_json.contains("\"disk_state\""));
    assert!(health_json.contains("\"stripes\""));
}
