//! The paper's Figure 3 example, reconstructed from the prose of §3.2,
//! exercised end to end: every claim the text makes about the graph
//! must hold for every engine in the workspace.

use fastlive::cfg::{DfsTree, DomTree, LoopForest, Reducibility};
use fastlive::core::{reference::ReferenceChecker, LivenessChecker, SortedLivenessChecker};
use fastlive::dataflow::oracle;
use fastlive::graph::DiGraph;

/// Paper nodes 1..=11 become 0..=10.
fn figure3() -> DiGraph {
    DiGraph::from_edges(
        11,
        0,
        &[
            (0, 1),
            (1, 2),
            (1, 10),
            (2, 3),
            (2, 7),
            (3, 4),
            (4, 5),
            (5, 6),
            (5, 4),
            (6, 1),
            (7, 8),
            (8, 9),
            (8, 5),
            (9, 7),
            (9, 10),
        ],
    )
}

/// The three variables of the narration, as (def block, use block),
/// 0-based: w = (2→1, 4→3), x = (3→2, 9→8), y = (3→2 or 2, 5→4).
const W: (u32, u32) = (1, 3);
const X: (u32, u32) = (2, 8);
const Y: (u32, u32) = (2, 4);

#[test]
fn back_edges_and_targets_match_the_paper() {
    let g = figure3();
    let dfs = DfsTree::compute(&g);
    // "All back edge targets (8, 5, 2)" — 0-based {7, 4, 1}.
    let mut targets: Vec<u32> = dfs.back_edges().iter().map(|&(_, t)| t).collect();
    targets.sort_unstable();
    assert_eq!(targets, vec![1, 4, 7]);
}

#[test]
fn the_example_is_irreducible() {
    // The {5,6} loop (paper) is entered both from 4 and via the cross
    // edge from 9: one back edge fails the dominance criterion.
    let g = figure3();
    let dfs = DfsTree::compute(&g);
    let dom = DomTree::compute(&g, &dfs);
    let red = Reducibility::compute(&dfs, &dom);
    assert!(!red.is_reducible());
    assert_eq!(red.irreducible_back_edges().len(), 1);
    assert_eq!(red.num_back_edges(), 3);
    // Havlak agrees: the loop headed by (paper) 5 is marked irreducible.
    let forest = LoopForest::compute(&g, &dfs);
    let l = forest.loop_headed_by(4).expect("loop at paper node 5");
    assert!(!forest.loop_ref(l).reducible);
}

#[test]
fn t_set_of_paper_node_10() {
    // §3.2: the relevant back-edge targets from (paper) 10 are
    // {10, 8, 5, 2}.
    let live = LivenessChecker::compute(&figure3());
    let mut t = live.t_set(9);
    t.sort_unstable();
    assert_eq!(t, vec![1, 4, 7, 9]);
    // And the Definition-5 reference agrees exactly here.
    let reference = ReferenceChecker::compute(&figure3());
    let t_ref: Vec<u32> = reference.t_set(9).iter().copied().collect();
    assert_eq!(t_ref, vec![1, 4, 7, 9]);
}

#[test]
fn narrated_queries_on_every_engine() {
    let g = figure3();
    let bitset = LivenessChecker::compute(&g);
    let sorted = SortedLivenessChecker::compute(&g);
    let reference = ReferenceChecker::compute(&g);

    // (variable, q, expected): the four §3.2 queries, 0-based.
    let cases = [
        (X, 9, true),  // "is x live-in at node 10?" — yes
        (Y, 9, true),  // "is y live-in at 10?" — yes, two back-edge hops
        (W, 9, false), // "is w live-in at 10?" — no
        (X, 3, false), // "is x live-in at 4?" — no
    ];
    for ((def, usage), q, expected) in cases {
        let uses = [usage];
        assert_eq!(
            oracle::live_in(&g, def, &uses, q),
            expected,
            "oracle {def}->{usage} at {q}"
        );
        assert_eq!(
            bitset.is_live_in(def, &uses, q),
            expected,
            "bitset {def}->{usage} at {q}"
        );
        assert_eq!(
            sorted.is_live_in(def, &uses, q),
            expected,
            "sorted {def}->{usage} at {q}"
        );
        assert_eq!(
            reference.is_live_in(def, &uses, q),
            expected,
            "reference {def}->{usage} at {q}"
        );
    }
}

#[test]
fn exhaustive_agreement_with_the_oracle_on_figure3() {
    // Every (def, use, q) triple with def dominating the use — the
    // strict-SSA precondition — must agree with Definition 2.
    let g = figure3();
    let dfs = DfsTree::compute(&g);
    let dom = DomTree::compute(&g, &dfs);
    let live = LivenessChecker::compute(&g);
    for def in 0..11u32 {
        for u in 0..11u32 {
            if !dom.dominates(def, u) {
                continue;
            }
            for q in 0..11u32 {
                let uses = [u];
                assert_eq!(
                    live.is_live_in(def, &uses, q),
                    oracle::live_in(&g, def, &uses, q),
                    "live-in def={def} use={u} q={q}"
                );
                assert_eq!(
                    live.is_live_out(def, &uses, q),
                    oracle::live_out(&g, def, &uses, q),
                    "live-out def={def} use={u} q={q}"
                );
            }
        }
    }
}

#[test]
fn figure3_as_an_ir_function() {
    // The same CFG as a real program: w defined at (paper) 2, x and y
    // at 3; w used at 4, y at 5, x at 9. The full IR stack must answer
    // the narrated queries like the graph-level checker does.
    use fastlive::core::{verify_strict_ssa, FunctionLiveness};
    use fastlive::ir::parse_function;

    let f = parse_function(
        "function %fig3 {
         block0:
             jump block1
         block1:
             v0 = iconst 1
             v1 = iconst 0
             brif v1, block2, block10
         block2:
             v2 = iconst 2
             v3 = iconst 3
             v4 = iconst 0
             brif v4, block3, block7
         block3:
             v5 = ineg v0
             jump block4
         block4:
             v6 = ineg v3
             jump block5
         block5:
             v7 = iconst 0
             brif v7, block6, block4
         block6:
             jump block1
         block7:
             jump block8
         block8:
             v8 = ineg v2
             v9 = iconst 0
             brif v9, block9, block5
         block9:
             v10 = iconst 0
             brif v10, block7, block10
         block10:
             return }",
    )
    .expect("parses");
    verify_strict_ssa(&f).expect("strict SSA");

    let live = FunctionLiveness::compute(&f);
    let w = f.value("v0").unwrap();
    let x = f.value("v2").unwrap();
    let y = f.value("v3").unwrap();
    let paper10 = f.block_by_index(9);
    let paper4 = f.block_by_index(3);

    assert!(live.is_live_in(&f, x, paper10), "x live-in at 10");
    assert!(live.is_live_in(&f, y, paper10), "y live-in at 10");
    assert!(!live.is_live_in(&f, w, paper10), "w not live at 10");
    assert!(!live.is_live_in(&f, x, paper4), "x not live-in at 4");

    // Cross-check against the oracle over the whole function.
    for v in [w, x, y] {
        for b in f.blocks() {
            assert_eq!(
                live.is_live_in(&f, v, b),
                oracle::live_in_value(&f, v, b),
                "live-in {v}@{b}"
            );
            assert_eq!(
                live.is_live_out(&f, v, b),
                oracle::live_out_value(&f, v, b),
                "live-out {v}@{b}"
            );
        }
    }
}

#[test]
fn w_fails_for_the_reason_the_paper_gives() {
    // "The problem is that 2 is not strictly dominated by def(w)":
    // paper node 2 (0-based 1) is w's own definition block, so the
    // intersection T_10 ∩ sdom(def(w)) drops it, and no surviving
    // candidate reaches the use.
    let g = figure3();
    let live = LivenessChecker::compute(&g);
    let candidates: Vec<u32> = live.candidates(W.0, 9).collect();
    assert!(!candidates.contains(&W.0), "def(w) itself must be excluded");
    for t in candidates {
        assert!(
            !live.reduced_reachable(t, W.1),
            "no candidate may reach w's use (got {t})"
        );
    }
}

#[test]
fn x_at_4_fails_for_the_reason_the_paper_gives() {
    // "to reach 8 on a path from 4 the path must leave the dominance
    // subtree of def(x)": 8 (paper) is reachable from 4 in the full
    // graph but is not in T_4.
    let g = figure3();
    let live = LivenessChecker::compute(&g);
    // Paper 8 = node 7 is NOT in T_4 (node 3).
    assert!(!live.t_set(3).contains(&7));
    // Even though a path 4,5,6,7,2,3,8 exists in the full graph:
    // (0-based: 3,4,5,6,1,2,7 — check raw reachability.)
    let mut seen = [false; 11];
    let mut stack = vec![3u32];
    seen[3] = true;
    while let Some(n) = stack.pop() {
        use fastlive::graph::Cfg as _;
        for &s in g.succs(n) {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
    }
    assert!(seen[7], "paper node 8 is reachable from 4 in the full CFG");
}
