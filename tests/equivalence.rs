//! The workspace-wide equivalence battery: on generated workloads,
//! every liveness engine must agree with the brute-force Definition-2
//! oracle for every value at every block, live-in and live-out.

use fastlive::core::{FunctionLiveness, LivenessChecker, LoopForestChecker, SortedLivenessChecker};
use fastlive::dataflow::{oracle, AppelLiveness, IterativeLiveness, LaoLiveness, VarUniverse};
use fastlive::ir::Function;
use fastlive::workload::{generate_function, GenParams};

fn workload(seed: u64, target: usize) -> Function {
    let params = GenParams {
        target_blocks: target,
        num_params: 2 + (seed % 3) as u32,
        ..GenParams::default()
    };
    generate_function(&format!("eq{seed}"), params, seed).1
}

#[test]
fn all_engines_match_the_oracle_on_generated_functions() {
    for seed in 0..25u64 {
        let func = workload(seed, 10 + (seed as usize % 4) * 10);
        let universe = VarUniverse::all(&func);
        let checker = FunctionLiveness::compute(&func);
        let iterative = IterativeLiveness::compute(&func, &universe);
        let lao = LaoLiveness::compute(&func, &universe);
        let appel = AppelLiveness::compute(&func, &universe);

        for v in func.values() {
            for b in func.blocks() {
                let want_in = oracle::live_in_value(&func, v, b);
                let want_out = oracle::live_out_value(&func, v, b);
                assert_eq!(
                    checker.is_live_in(&func, v, b),
                    want_in,
                    "checker in {v}@{b} seed {seed}"
                );
                assert_eq!(
                    checker.is_live_out(&func, v, b),
                    want_out,
                    "checker out {v}@{b} seed {seed}"
                );
                assert_eq!(
                    iterative.is_live_in(v, b),
                    want_in,
                    "iter in {v}@{b} seed {seed}"
                );
                assert_eq!(
                    iterative.is_live_out(v, b),
                    want_out,
                    "iter out {v}@{b} seed {seed}"
                );
                assert_eq!(lao.is_live_in(v, b), want_in, "lao in {v}@{b} seed {seed}");
                assert_eq!(
                    lao.is_live_out(v, b),
                    want_out,
                    "lao out {v}@{b} seed {seed}"
                );
                assert_eq!(
                    appel.is_live_in(v, b),
                    want_in,
                    "appel in {v}@{b} seed {seed}"
                );
                assert_eq!(
                    appel.is_live_out(v, b),
                    want_out,
                    "appel out {v}@{b} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn graph_level_engines_agree_on_generated_cfgs() {
    // Drive the three graph-level checkers with raw (def, uses, q)
    // probes derived from the functions' real def-use chains.
    for seed in 40..55u64 {
        let func = workload(seed, 25);
        let bitset = LivenessChecker::compute(&func);
        let sorted = SortedLivenessChecker::compute(&func);
        let forest = LoopForestChecker::compute(&func);
        for v in func.values() {
            let def = func.def_block(v).as_u32();
            let uses: Vec<u32> = func.use_blocks(v).map(|b| b.as_u32()).collect();
            for b in func.blocks() {
                let q = b.as_u32();
                let want_in = bitset.is_live_in(def, &uses, q);
                let want_out = bitset.is_live_out(def, &uses, q);
                assert_eq!(
                    sorted.is_live_in(def, &uses, q),
                    want_in,
                    "sorted in seed {seed}"
                );
                assert_eq!(
                    sorted.is_live_out(def, &uses, q),
                    want_out,
                    "sorted out seed {seed}"
                );
                if let Some(f) = &forest {
                    assert_eq!(
                        f.is_live_in(def, &uses, q),
                        want_in,
                        "forest in seed {seed}"
                    );
                    assert_eq!(
                        f.is_live_out(def, &uses, q),
                        want_out,
                        "forest out seed {seed}"
                    );
                }
            }
        }
    }
}

#[test]
fn phi_universe_is_a_consistent_restriction() {
    // The φ-related analysis must agree with the full analysis on every
    // variable it tracks.
    for seed in 60..70u64 {
        let func = workload(seed, 20);
        let full = LaoLiveness::compute(&func, &VarUniverse::all(&func));
        let phi_universe = VarUniverse::phi_related(&func);
        let phi = LaoLiveness::compute(&func, &phi_universe);
        for &v in phi_universe.values() {
            for b in func.blocks() {
                assert_eq!(phi.is_live_in(v, b), full.is_live_in(v, b), "seed {seed}");
                assert_eq!(phi.is_live_out(v, b), full.is_live_out(v, b), "seed {seed}");
            }
        }
        // The fill ratio shrinks when the universe shrinks (§6.2's
        // 3.16 vs 18.52 effect).
        assert!(phi.average_fill() <= full.average_fill());
    }
}

#[test]
fn average_fill_ratio_has_the_papers_ordering() {
    // Aggregated over a few functions: φ-related sets are several times
    // sparser than full-universe sets, the effect behind the paper's
    // "full liveness takes 60% longer" remark.
    let mut phi_total = 0.0;
    let mut full_total = 0.0;
    for seed in 80..90u64 {
        let func = workload(seed, 30);
        phi_total += LaoLiveness::compute(&func, &VarUniverse::phi_related(&func)).average_fill();
        full_total += LaoLiveness::compute(&func, &VarUniverse::all(&func)).average_fill();
    }
    assert!(
        full_total > phi_total * 1.5,
        "full sets should be much denser: {full_total:.2} vs {phi_total:.2}"
    );
}
