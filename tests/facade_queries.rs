//! Unit coverage for the facade's typed query layer (ISSUE 5): every
//! `QueryError` variant, every `BuildError` variant, the name/id
//! addressing equivalence, and the builder's persistence-GC flag.

use fastlive::ir::{InstData, UnaryOp};
use fastlive::{
    parse_module, BackendKind, Block, BuildError, Fastlive, PointRef, Query, QueryError, Response,
    Value,
};

const SRC: &str = "function %count { block0(v0):
     v1 = iconst 0
     jump block1(v1)
 block1(v2):
     v3 = iconst 1
     v4 = iadd v2, v3
     v5 = icmp_slt v4, v0
     brif v5, block1(v4), block2
 block2:
     return v4 }
 function %id { block0(v0): return v0 }";

fn fl() -> Fastlive {
    Fastlive::builder()
        .threads(1)
        .build()
        .expect("valid config")
}

#[test]
fn unknown_function_by_name_and_id() {
    let module = parse_module(SRC).unwrap();
    let f = fl();
    let mut s = f.session(&module);
    let err = s
        .query(&module, &Query::live_sets("nope"))
        .expect_err("unknown name");
    assert_eq!(err, QueryError::UnknownFunction("nope".into()));
    assert!(err.to_string().contains("unknown function"), "{err}");
    let err = s
        .query(&module, &Query::live_sets(99usize))
        .expect_err("out-of-range id");
    assert_eq!(err, QueryError::UnknownFunction(99usize.into()));
}

#[test]
fn unknown_value_name_malformed_and_out_of_range() {
    let module = parse_module(SRC).unwrap();
    let f = fl();
    let mut s = f.session(&module);
    for bad in ["v99", "x1", "v"] {
        let err = s
            .query(&module, &Query::live_in("count", bad, "block1"))
            .expect_err("unknown value");
        assert!(
            matches!(&err, QueryError::UnknownValue { func, .. } if func == "count"),
            "{err:?}"
        );
        assert!(err.to_string().contains("unknown value"), "{err}");
    }
    // Out-of-range id form.
    let err = s
        .query(
            &module,
            &Query::live_out("count", Value::from_index(999), "block1"),
        )
        .expect_err("out-of-range value id");
    assert!(matches!(err, QueryError::UnknownValue { .. }), "{err:?}");
}

#[test]
fn unknown_block_name_malformed_and_out_of_range() {
    let module = parse_module(SRC).unwrap();
    let f = fl();
    let mut s = f.session(&module);
    for bad in ["block9", "foo", "block"] {
        let err = s
            .query(&module, &Query::live_in("count", "v0", bad))
            .expect_err("unknown block");
        assert!(
            matches!(&err, QueryError::UnknownBlock { func, .. } if func == "count"),
            "{err:?}"
        );
        assert!(err.to_string().contains("unknown block"), "{err}");
    }
    let err = s
        .query(
            &module,
            &Query::live_in("count", "v0", Block::from_index(42)),
        )
        .expect_err("out-of-range block id");
    assert!(matches!(err, QueryError::UnknownBlock { .. }), "{err:?}");
}

#[test]
fn point_on_missing_instruction() {
    let module = parse_module(SRC).unwrap();
    let f = fl();
    let mut s = f.session(&module);
    // block2 holds exactly one instruction (the return).
    let err = s
        .query(
            &module,
            &Query::live_at("count", "v4", PointRef::after("block2", 5)),
        )
        .expect_err("no instruction 5");
    assert_eq!(
        err,
        QueryError::MissingInstruction {
            func: "count".into(),
            block: Block::from_index(2),
            inst: 5,
            num_insts: 1,
        }
    );
    assert!(err.to_string().contains("no instruction 5"), "{err}");
    // The entry point of a block never needs an instruction.
    assert!(s
        .query(
            &module,
            &Query::live_at("count", "v0", PointRef::entry("block1"))
        )
        .is_ok());
}

#[test]
fn detached_definition_surfaces_per_backend() {
    let mut module = parse_module(SRC).unwrap();
    let count = module.by_name("count").unwrap();
    let b0 = module.func(count).entry_block();
    let dead = module
        .func_mut(count)
        .insert_inst(b0, 0, InstData::IntConst { imm: 7 });
    let dv = module.func(count).inst_result(dead).unwrap();
    module.func_mut(count).remove_inst(dead);

    let f = fl();
    for kind in [
        BackendKind::Direct,
        BackendKind::Session,
        BackendKind::Oracle,
    ] {
        let mut s = f.session_with(&module, kind);
        let err = s
            .query(
                &module,
                &Query::live_at(count, dv, PointRef::entry("block1")),
            )
            .expect_err("detached definition");
        assert_eq!(err, QueryError::DetachedDefinition(dv), "{kind:?}");
        let err = s
            .query(&module, &Query::interfere(count, dv, "v0"))
            .expect_err("detached definition under interference");
        assert_eq!(err, QueryError::DetachedDefinition(dv), "{kind:?}");
        assert!(err.to_string().contains("removed"), "{err}");
    }
}

#[test]
fn builder_validation_failures() {
    // More stripes than cache entries: the engine would silently
    // inflate the bound; the builder refuses.
    let err = Fastlive::builder()
        .stripes(16)
        .cache_capacity(4)
        .build()
        .expect_err("stripes exceed capacity");
    assert_eq!(
        err,
        BuildError::StripesExceedCapacity {
            stripes: 16,
            cache_capacity: 4,
        }
    );
    assert!(err.to_string().contains("stripes"), "{err}");

    // GC policy without a store to sweep.
    let err = Fastlive::builder()
        .gc(10, None)
        .build()
        .expect_err("gc needs persist_dir");
    assert_eq!(err, BuildError::GcWithoutPersistDir);
    assert!(err.to_string().contains("persist_dir"), "{err}");

    // Persist path squatted by a regular file.
    let file = std::env::temp_dir().join(format!("fastlive-notadir-{}", std::process::id()));
    std::fs::write(&file, b"squatter").unwrap();
    let err = Fastlive::builder()
        .persist_dir(&file)
        .build()
        .expect_err("persist path is a file");
    assert_eq!(err, BuildError::PersistDirNotADirectory(file.clone()));
    assert!(err.to_string().contains("not a directory"), "{err}");
    std::fs::remove_file(&file).ok();

    // And the valid shapes of the same knobs build fine.
    assert!(Fastlive::builder()
        .stripes(4)
        .cache_capacity(4)
        .build()
        .is_ok());
    assert!(Fastlive::builder()
        .cache_capacity(0)
        .stripes(16)
        .build()
        .is_ok());

    // Auto stripes (the default, 0) narrow to a small capacity instead
    // of silently inflating it to one entry per default stripe: a
    // 4-entry cache gets 4 stripes, and the effective bound stays 4.
    let small = Fastlive::builder().cache_capacity(4).build().unwrap();
    assert_eq!(small.engine().stripe_stats().len(), 4);
    assert_eq!(small.config().stripes, 4);
}

#[test]
fn builder_gc_flag_prunes_the_store_and_degrades_cleanly() {
    let dir = std::env::temp_dir().join(format!("fastlive-facade-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let module = parse_module(SRC).unwrap();

    // Populate: two functions, two distinct shapes, two entries.
    let writer = Fastlive::builder()
        .threads(1)
        .persist_dir(&dir)
        .build()
        .unwrap();
    let _ = writer.session(&module);
    assert_eq!(writer.engine().cache_stats().disk_misses, 2);

    // Rebuild with the gc flag: the sweep runs at build() and prunes
    // to one entry; the fresh engine then pays one disk hit and one
    // clean disk-miss recomputation — same answers either way.
    let pruned = Fastlive::builder()
        .threads(1)
        .persist_dir(&dir)
        .gc(1, None)
        .build()
        .unwrap();
    let mut session = pruned.session(&module);
    let stats = pruned.engine().cache_stats();
    assert_eq!(stats.disk_hits, 1, "{stats:?}");
    assert_eq!(stats.disk_misses, 1, "{stats:?}");
    assert_eq!(stats.disk_rejects, 0, "{stats:?}");
    assert!(session
        .is_live_in(&module, "count", "v0", "block1")
        .unwrap());

    // The recorded policy is re-runnable on demand.
    let stats = pruned.gc_persist(None).expect("policy + store configured");
    assert_eq!(stats.retained, 1);
    // Without a policy or override, there is nothing to run.
    assert_eq!(writer.gc_persist(None), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nullness_queries_answer_and_fail_like_liveness_ones() {
    let module = parse_module(SRC).unwrap();
    let f = fl();
    for kind in [
        BackendKind::Direct,
        BackendKind::Session,
        BackendKind::Oracle,
    ] {
        let mut s = f.session_with(&module, kind);
        // v1 = iconst 0 is definitely null; v3 = iconst 1 non-null;
        // v4 = v2 + v3 joins Null/NonNull facts over the loop header.
        assert_eq!(
            s.nullness_of(&module, "count", "v1").unwrap(),
            fastlive::Nullness::Null,
            "{kind:?}"
        );
        assert_eq!(
            s.nullness_of(&module, "count", "v3").unwrap(),
            fastlive::Nullness::NonNull,
            "{kind:?}"
        );
        // v2 (block1's param) is defined at the loop header, so it is
        // definitely initialized at block2 but not at block0.
        assert!(s
            .is_definitely_init(&module, "count", "v2", "block2")
            .unwrap());
        assert!(!s
            .is_definitely_init(&module, "count", "v2", "block0")
            .unwrap());

        // The error surface matches the liveness family.
        let err = s
            .query(&module, &Query::nullness("nope", "v0"))
            .expect_err("unknown function");
        assert_eq!(err, QueryError::UnknownFunction("nope".into()));
        let err = s
            .query(&module, &Query::nullness("count", "v99"))
            .expect_err("unknown value");
        assert!(matches!(err, QueryError::UnknownValue { .. }), "{err:?}");
        let err = s
            .query(&module, &Query::definitely_init("count", "v0", "block9"))
            .expect_err("unknown block");
        assert!(matches!(err, QueryError::UnknownBlock { .. }), "{err:?}");
    }

    // Response accessors on the new variants.
    let mut s = f.session(&module);
    let fact = s.query(&module, &Query::nullness("count", "v1")).unwrap();
    assert_eq!(fact.as_nullness(), Some(fastlive::Nullness::Null));
    assert!(fact.as_bool().is_none());
    let init = s
        .query(&module, &Query::definitely_init("count", "v1", "block2"))
        .unwrap();
    assert_eq!(init.as_bool(), Some(true));
    assert!(init.as_nullness().is_none());
}

#[test]
fn name_and_id_addressing_are_interchangeable() {
    let module = parse_module(SRC).unwrap();
    let count = module.by_name("count").unwrap();
    let v0 = module.func(count).params()[0];
    let b1 = module.func(count).block_by_index(1);
    let f = fl();
    let mut s = f.session(&module);
    let by_name = s.query(&module, &Query::live_in("count", "v0", "block1"));
    let by_id = s.query(&module, &Query::live_in(count, v0, b1));
    assert_eq!(by_name, by_id);
    assert_eq!(by_name, Ok(Response::Live(true)));
}

#[test]
fn response_accessors() {
    let module = parse_module(SRC).unwrap();
    let f = fl();
    let mut s = f.session(&module);
    let live = s
        .query(&module, &Query::live_in("count", "v0", "block1"))
        .unwrap();
    assert_eq!(live.as_bool(), Some(true));
    assert!(live.as_sets().is_none());
    let sets = s.query(&module, &Query::live_sets("count")).unwrap();
    assert!(sets.as_bool().is_none());
    let sets = sets.as_sets().expect("Sets response");
    assert_eq!(sets.live_in.len(), module.func(0).num_blocks());
    // v0 (the loop bound) is live-in at block1 per the sets too.
    let v0 = module.func(0).params()[0];
    assert!(sets.live_in[1].contains(&v0));
}

#[test]
fn typed_conveniences_and_engine_session_access() {
    let mut module = parse_module(SRC).unwrap();
    let f = fl();
    let mut s = f.session(&module);
    assert_eq!(s.backend_name(), "session");
    assert!(s.is_live_in(&module, "count", "v0", "block1").unwrap());
    assert!(s.is_live_out(&module, "count", "v4", "block1").unwrap());
    assert!(s
        .is_live_at(&module, "count", "v4", PointRef::after("block1", 1))
        .unwrap());
    assert!(s.values_interfere(&module, "count", "v0", "v2").unwrap());
    assert!(!s.values_interfere(&module, "count", "v1", "v4").unwrap());
    let sets = s.live_sets(&module, "count").unwrap();
    assert_eq!(sets.live_out.len(), 3);

    // The engine session stays reachable for epoch accounting, and the
    // facade preserves its revalidation semantics: an instruction edit
    // changes answers without a recomputation.
    assert_eq!(s.engine_session().expect("session backend").epoch(0), 0);
    let b2 = module.func(0).block_by_index(2);
    let v0 = module.func(0).params()[0];
    module.func_mut(0).insert_inst(
        b2,
        0,
        InstData::Unary {
            op: UnaryOp::Ineg,
            arg: v0,
        },
    );
    assert!(s.is_live_in(&module, "count", "v0", "block2").unwrap());
    assert_eq!(s.engine_session().unwrap().epoch(0), 0, "no CFG change");
    assert_eq!(
        f.session_with(&module, BackendKind::Direct)
            .engine_session()
            .map(|_| ()),
        None,
        "direct backend exposes no engine session"
    );
}
